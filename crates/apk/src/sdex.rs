//! SDEX — the DEX-analog bytecode container.
//!
//! Mirrors the parts of real DEX that the paper's pipeline consumes:
//!
//! * a deduplicated **string pool** (class names, method names, descriptors,
//!   string literals such as URLs);
//! * a **type table** listing every class *referenced* by the file — both
//!   classes defined in this package and framework classes such as
//!   `android/webkit/WebView`;
//! * a **method table** of `(class, name, descriptor)` references;
//! * **class definitions** for the defined subset, each with a superclass
//!   link, flags, and encoded methods whose code is a small instruction set
//!   sufficient for call-graph construction (`invoke-*`, `const-string`,
//!   `new-instance`, branches, returns).
//!
//! [`DexBuilder`] writes files; [`Dex::decode`] parses and *validates* them
//! (index bounds, superclass acyclicity, checksum). The decoder must accept
//! exactly the encoder's output and reject everything [`crate::corrupt`]
//! produces.
//!
//! Decoding is **zero-copy**: the string pool is kept as `(offset, len)`
//! spans into the backing [`Bytes`] blob, validated (UTF-8 and bounds) in
//! the same linear pass that parses the tables, so no per-entry `String` is
//! ever allocated. [`Dex::decode_bytes`] shares the caller's buffer via the
//! `Bytes` refcount — handing it an SAPK section decodes a whole dex with a
//! single table-sized allocation per table. The pre-zero-copy owning
//! decoder survives as [`oracle`], and property tests pin the two together
//! byte-for-byte on valid and corrupted input alike.

use crate::error::ApkError;
use crate::wire::{
    adler32, get_string_span, get_string_span_unchecked, get_uvarint, put_string, put_uvarint,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// Magic bytes at the start of every SDEX blob.
pub const SDEX_MAGIC: [u8; 4] = *b"SDEX";
/// Current SDEX format version: version 2 lowered every data-bearing
/// instruction onto virtual registers (`const-string vA`, `move vA vB`,
/// explicit invoke argument lists) and records a per-method register count;
/// version 3 appends an optional **type lookup table** section after the
/// class table — a precomputed open-addressing hash over type names
/// (modelled on ART's `TypeLookupTable`) that makes [`Dex::type_by_name`]
/// an O(1) probe instead of a linear scan.
pub const SDEX_VERSION: u16 = 3;
/// Oldest version the decoders still accept — the original straight-line
/// layout without register operands. Version-1 bodies decode into the
/// register IR with every operand lowered onto `v0`.
pub const SDEX_MIN_VERSION: u16 = 1;

/// How much validation the SDEX decoders perform, mirroring dexrs's
/// `VerifyPreset`.
///
/// * [`All`](VerifyPreset::All) — everything the format defines: header
///   magic/version, Adler-32 body checksum, per-string UTF-8, index bounds
///   on every table reference and instruction operand, superclass
///   acyclicity, and lookup-table canonicality. This is the default and the
///   only preset that is sound on bytes an adversary (or bit rot) may have
///   touched; every corruption test runs under it.
/// * [`ChecksumOnly`](VerifyPreset::ChecksumOnly) — header plus the
///   Adler-32 checksum; the per-entry structural re-validation is skipped.
///   Sound for blobs that already passed `All` once and are re-read through
///   a checksummed transport (e.g. resume-cache-validated shards).
/// * [`None`](VerifyPreset::None) — header only; even the checksum is
///   skipped. Sound only for generator-produced bytes that never left the
///   process boundary, or shard entries whose enclosing WSHD checksum was
///   verified by the container layer this read.
///
/// Soundness note: [`Dex::string`] slices the pool with
/// `from_utf8_unchecked`, justified under `All` because every span is
/// recorded after a successful UTF-8 scan. The trusted presets skip that
/// scan (spans stay bounds-checked, so no out-of-bounds read is possible),
/// which is exactly why they must never be handed untrusted bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VerifyPreset {
    /// Full validation — the corruption-facing default.
    #[default]
    All,
    /// Header + Adler-32 checksum; structural re-validation skipped.
    ChecksumOnly,
    /// Header only; checksum and structural validation skipped.
    None,
}

impl VerifyPreset {
    /// Whether the Adler-32 body checksum is compared against the header.
    pub fn checks_checksum(self) -> bool {
        !matches!(self, VerifyPreset::None)
    }

    /// Whether per-entry structural validation runs (UTF-8, index bounds,
    /// instruction operands, hierarchy acyclicity, lookup-table rebuild).
    pub fn checks_structure(self) -> bool {
        matches!(self, VerifyPreset::All)
    }
}

/// Index into the type table of a [`Dex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

/// Index into the method table of a [`Dex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId(pub u32);

/// Index of a virtual register inside one method body. Valid registers are
/// `0..MethodDef::registers`; the decoder bounds-checks every operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u16);

/// A `(class, name, descriptor)` method reference — the SDEX analog of a
/// DEX `method_id_item`. Refers to internal or framework methods alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MethodRef {
    /// Type that declares (or receives) the call.
    pub class: TypeId,
    /// String-pool index of the method name.
    pub name: u32,
    /// String-pool index of the descriptor, e.g. `(Ljava/lang/String;)V`.
    pub descriptor: u32,
}

/// Class-level flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassFlags {
    /// Declared `public`.
    pub public: bool,
    /// Is an interface rather than a class.
    pub interface: bool,
    /// Declared `abstract`.
    pub abstract_: bool,
}

impl ClassFlags {
    fn to_bits(self) -> u64 {
        (self.public as u64) | (self.interface as u64) << 1 | (self.abstract_ as u64) << 2
    }

    fn from_bits(bits: u64) -> Self {
        ClassFlags {
            public: bits & 1 != 0,
            interface: bits & 2 != 0,
            abstract_: bits & 4 != 0,
        }
    }
}

/// How an `invoke` instruction dispatches, mirroring DEX invoke kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvokeKind {
    /// `invoke-virtual` — dispatch through the receiver's class hierarchy.
    Virtual,
    /// `invoke-static`.
    Static,
    /// `invoke-direct` — constructors and private methods.
    Direct,
    /// `invoke-interface`.
    Interface,
    /// `invoke-super`.
    Super,
}

impl InvokeKind {
    fn to_byte(self) -> u8 {
        match self {
            InvokeKind::Virtual => 0,
            InvokeKind::Static => 1,
            InvokeKind::Direct => 2,
            InvokeKind::Interface => 3,
            InvokeKind::Super => 4,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ApkError> {
        Ok(match b {
            0 => InvokeKind::Virtual,
            1 => InvokeKind::Static,
            2 => InvokeKind::Direct,
            3 => InvokeKind::Interface,
            4 => InvokeKind::Super,
            other => return Err(ApkError::BadOpcode(0x10 | other)),
        })
    }
}

/// One SDEX instruction. The set is intentionally small: exactly what the
/// call-graph builder (invokes), decompiler (all of it), and the
/// constant-propagation pass that recovers string arguments need. Since
/// wire version 2 the data-bearing instructions carry register operands, so
/// URL recovery is def-use tracking rather than an adjacency accident.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instruction {
    /// Call the referenced method, passing the listed argument registers.
    Invoke {
        /// Dispatch kind.
        kind: InvokeKind,
        /// Callee reference.
        method: MethodId,
        /// Argument registers; for web-call methods the URL (or data)
        /// argument is `args[0]`.
        args: Vec<Reg>,
    },
    /// Load a string-pool constant (e.g. a URL later passed to `loadUrl`)
    /// into a register.
    ConstString {
        /// Destination register.
        dst: Reg,
        /// String-pool index.
        string: u32,
    },
    /// Copy one register into another.
    Move {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Allocate an instance of a type (e.g. `new CustomTabsIntent.Builder`).
    NewInstance {
        /// Type allocated.
        ty: TypeId,
    },
    /// Conditional branch by a signed instruction offset.
    IfTest {
        /// Relative target, in instructions.
        offset: i32,
    },
    /// Unconditional branch by a signed instruction offset.
    Goto {
        /// Relative target, in instructions.
        offset: i32,
    },
    /// Return from a `void` method.
    ReturnVoid,
    /// No operation (padding the generator uses to vary method sizes).
    Nop,
}

const OP_INVOKE: u8 = 0x01;
const OP_CONST_STRING: u8 = 0x02;
const OP_NEW_INSTANCE: u8 = 0x03;
const OP_IF: u8 = 0x04;
const OP_GOTO: u8 = 0x05;
const OP_RETURN_VOID: u8 = 0x06;
const OP_NOP: u8 = 0x07;
const OP_MOVE: u8 = 0x08;

/// Hard ceiling on invoke argument counts, mirroring DEX's one-byte
/// argument count. Keeps a forged count from driving a huge allocation
/// before the per-register bounds checks run.
const MAX_INVOKE_ARGS: u64 = 255;

fn zigzag_encode(v: i32) -> u64 {
    ((v << 1) ^ (v >> 31)) as u32 as u64
}

fn zigzag_decode(v: u64) -> i32 {
    let v = v as u32;
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}

impl Instruction {
    /// Highest register operand mentioned, if the instruction has any.
    pub fn max_reg(&self) -> Option<u16> {
        match self {
            Instruction::Invoke { args, .. } => args.iter().map(|r| r.0).max(),
            Instruction::ConstString { dst, .. } => Some(dst.0),
            Instruction::Move { dst, src } => Some(dst.0.max(src.0)),
            _ => None,
        }
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        match self {
            Instruction::Invoke { kind, method, args } => {
                buf.put_u8(OP_INVOKE);
                buf.put_u8(kind.to_byte());
                put_uvarint(buf, method.0 as u64);
                put_uvarint(buf, args.len() as u64);
                for a in args {
                    put_uvarint(buf, a.0 as u64);
                }
            }
            Instruction::ConstString { dst, string } => {
                buf.put_u8(OP_CONST_STRING);
                put_uvarint(buf, dst.0 as u64);
                put_uvarint(buf, *string as u64);
            }
            Instruction::Move { dst, src } => {
                buf.put_u8(OP_MOVE);
                put_uvarint(buf, dst.0 as u64);
                put_uvarint(buf, src.0 as u64);
            }
            Instruction::NewInstance { ty } => {
                buf.put_u8(OP_NEW_INSTANCE);
                put_uvarint(buf, ty.0 as u64);
            }
            Instruction::IfTest { offset } => {
                buf.put_u8(OP_IF);
                put_uvarint(buf, zigzag_encode(*offset));
            }
            Instruction::Goto { offset } => {
                buf.put_u8(OP_GOTO);
                put_uvarint(buf, zigzag_encode(*offset));
            }
            Instruction::ReturnVoid => buf.put_u8(OP_RETURN_VOID),
            Instruction::Nop => buf.put_u8(OP_NOP),
        }
    }

    /// Decode one instruction at wire `version`. Version 1 is the
    /// pre-register layout: no operand registers on the wire, so every
    /// decoded operand is lowered onto `v0` (the compatibility register)
    /// and `move` is not a valid opcode.
    fn decode<B: Buf>(buf: &mut B, version: u16) -> Result<Self, ApkError> {
        if !buf.has_remaining() {
            return Err(ApkError::Truncated {
                context: "instruction opcode",
            });
        }
        let op = buf.get_u8();
        Ok(match op {
            OP_INVOKE => {
                if !buf.has_remaining() {
                    return Err(ApkError::Truncated {
                        context: "invoke kind",
                    });
                }
                let kind = InvokeKind::from_byte(buf.get_u8())?;
                let method = MethodId(get_uvarint(buf)? as u32);
                let args = if version >= 2 {
                    let argc = get_uvarint(buf)?;
                    if argc > MAX_INVOKE_ARGS {
                        return Err(ApkError::Invalid("invoke argument count exceeds 255"));
                    }
                    let mut args = Vec::with_capacity(argc as usize);
                    for _ in 0..argc {
                        args.push(Reg(get_uvarint(buf)? as u16));
                    }
                    args
                } else {
                    vec![Reg(0)]
                };
                Instruction::Invoke { kind, method, args }
            }
            OP_CONST_STRING => {
                let dst = if version >= 2 {
                    Reg(get_uvarint(buf)? as u16)
                } else {
                    Reg(0)
                };
                Instruction::ConstString {
                    dst,
                    string: get_uvarint(buf)? as u32,
                }
            }
            OP_MOVE if version >= 2 => Instruction::Move {
                dst: Reg(get_uvarint(buf)? as u16),
                src: Reg(get_uvarint(buf)? as u16),
            },
            OP_NEW_INSTANCE => Instruction::NewInstance {
                ty: TypeId(get_uvarint(buf)? as u32),
            },
            OP_IF => Instruction::IfTest {
                offset: zigzag_decode(get_uvarint(buf)?),
            },
            OP_GOTO => Instruction::Goto {
                offset: zigzag_decode(get_uvarint(buf)?),
            },
            OP_RETURN_VOID => Instruction::ReturnVoid,
            OP_NOP => Instruction::Nop,
            other => return Err(ApkError::BadOpcode(other)),
        })
    }
}

/// A method *defined* in this SDEX file: a method-table reference plus code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodDef {
    /// Reference into the method table.
    pub method: MethodId,
    /// Declared `public` (affects entry-point discovery for callbacks).
    pub public: bool,
    /// Declared `static`.
    pub static_: bool,
    /// Number of virtual registers the body may touch; every register
    /// operand in `code` must be below this.
    pub registers: u32,
    /// Encoded body.
    pub code: Vec<Instruction>,
}

impl MethodDef {
    /// Build a def whose register count is computed from the code itself
    /// (highest mentioned register + 1).
    pub fn new(method: MethodId, public: bool, static_: bool, code: Vec<Instruction>) -> Self {
        let registers = code
            .iter()
            .filter_map(Instruction::max_reg)
            .map(|r| r as u32 + 1)
            .max()
            .unwrap_or(0);
        MethodDef {
            method,
            public,
            static_,
            registers,
            code,
        }
    }
}

/// A class defined in this SDEX file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDef {
    /// This class's entry in the type table.
    pub ty: TypeId,
    /// Superclass link (`None` only for `java/lang/Object`-rooted synthetics).
    pub superclass: Option<TypeId>,
    /// Class-level flags.
    pub flags: ClassFlags,
    /// Methods with code.
    pub methods: Vec<MethodDef>,
}

/// Location of one string-pool entry inside [`Dex::pool`]. The bytes were
/// UTF-8-validated when the span was recorded, so lookups can slice without
/// re-checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StrSpan {
    off: u32,
    len: u32,
}

/// A parsed, validated SDEX file.
///
/// The string pool is a span table into `pool` rather than a
/// `Vec<String>`: for decoded files `pool` is the raw blob itself (shared
/// with the enclosing SAPK section via the `Bytes` refcount — the borrow
/// the pipeline needs, without a lifetime parameter), and for builder-made
/// files it is a packed concatenation of the interned strings. Either way
/// [`Dex::string`] is a bounds-checked slice, never an allocation.
/// Sentinel in [`Dex::class_index`] for types with no class definition.
/// Cannot collide with a real position: class counts are bounded well
/// below `u32::MAX` by the 4 GiB blob cap.
const NO_CLASS: u32 = u32::MAX;

#[derive(Clone)]
pub struct Dex {
    /// Backing bytes every [`StrSpan`] indexes into.
    pool: Bytes,
    strings: Vec<StrSpan>,
    types: Vec<u32>,
    methods: Vec<MethodRef>,
    classes: Vec<ClassDef>,
    /// type -> position in `classes`, direct-indexed by `TypeId` with
    /// [`NO_CLASS`] marking undefined types. An array, not a map: decode
    /// builds it with one `memset`-shaped fill instead of per-class
    /// hashing, and [`Dex::class`] — the hottest lookup in call-graph
    /// construction — is a bounds-checked load.
    class_index: Box<[u32]>,
    /// Stored type lookup table (the v3 wire section): slot count a power
    /// of two, each slot `type_index + 1` or `0` for empty. `None` for
    /// v1/v2 blobs and for v3 blobs encoded without the section.
    lut: Option<Box<[u32]>>,
    /// Lazily built fallback probe table for lut-less dexes, so repeated
    /// name lookups stop being O(types) even without the wire section.
    name_probe: OnceLock<Box<[u32]>>,
}

impl Dex {
    /// String-pool lookup. Panics only if `idx` escaped validation, which
    /// `decode` guarantees cannot happen for parsed files.
    pub fn string(&self, idx: u32) -> &str {
        let s = self.strings[idx as usize];
        let bytes = &self.pool[s.off as usize..s.off as usize + s.len as usize];
        // SAFETY: every span is recorded exactly once, after a successful
        // `str::from_utf8` over these bytes (decode) or from an existing
        // `String` (builder), and `pool` is immutable from then on.
        unsafe { std::str::from_utf8_unchecked(bytes) }
    }

    /// Number of entries in the string pool.
    pub fn string_count(&self) -> usize {
        self.strings.len()
    }

    /// Binary name of a type, e.g. `com/example/Foo`.
    pub fn type_name(&self, ty: TypeId) -> &str {
        self.string(self.types[ty.0 as usize])
    }

    /// All types referenced by this file.
    pub fn type_ids(&self) -> impl Iterator<Item = TypeId> + '_ {
        (0..self.types.len() as u32).map(TypeId)
    }

    /// Number of entries in the type table — direct-indexed caches (e.g.
    /// the call graph's per-class vtables) size themselves from this.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// The method table entry for `id`.
    pub fn method_ref(&self, id: MethodId) -> MethodRef {
        self.methods[id.0 as usize]
    }

    /// Method name for `id`.
    pub fn method_name(&self, id: MethodId) -> &str {
        self.string(self.methods[id.0 as usize].name)
    }

    /// Method descriptor for `id`.
    pub fn method_descriptor(&self, id: MethodId) -> &str {
        self.string(self.methods[id.0 as usize].descriptor)
    }

    /// Number of entries in the method table.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Classes defined in this file.
    pub fn classes(&self) -> &[ClassDef] {
        &self.classes
    }

    /// Mutable access to the class definitions — the corruption module
    /// re-encodes damaged method bodies through this.
    pub(crate) fn classes_mut(&mut self) -> &mut [ClassDef] {
        &mut self.classes
    }

    /// Look up a defined class by type id.
    pub fn class(&self, ty: TypeId) -> Option<&ClassDef> {
        match self.class_index.get(ty.0 as usize) {
            Some(&i) if i != NO_CLASS => self.classes.get(i as usize),
            _ => None,
        }
    }

    /// Look up a type id by binary name: an O(1) probe into the stored
    /// lookup table when the blob carries one, otherwise into a fallback
    /// table built lazily on the first name lookup.
    pub fn type_by_name(&self, name: &str) -> Option<TypeId> {
        match &self.lut {
            Some(slots) => self.probe_lut(slots, name),
            None => {
                let slots = self
                    .name_probe
                    .get_or_init(|| build_type_lut(self.types.len(), |t| self.name_bytes(t)));
                self.probe_lut(slots, name)
            }
        }
    }

    /// Raw name bytes of type `t` — probe-side comparisons use bytes, not
    /// `&str`, so they stay well-defined under trusted presets that skipped
    /// the UTF-8 scan.
    fn name_bytes(&self, t: u32) -> &[u8] {
        let s = self.strings[self.types[t as usize] as usize];
        &self.pool[s.off as usize..(s.off + s.len) as usize]
    }

    /// Probe an open-addressing table for `name`. Defensive against
    /// damaged *trusted* tables: out-of-range slot values are skipped and a
    /// pathological full table terminates after one lap, so the worst a bad
    /// table yields on a trusted path is a miss, never a panic or a spin.
    fn probe_lut(&self, slots: &[u32], name: &str) -> Option<TypeId> {
        if slots.is_empty() {
            return None;
        }
        let mask = slots.len() - 1;
        let mut i = fnv1a(name.as_bytes()) as usize & mask;
        for _ in 0..slots.len() {
            let v = slots[i];
            if v == 0 {
                return None;
            }
            let t = v - 1;
            let matches = self
                .types
                .get(t as usize)
                .and_then(|&s| self.strings.get(s as usize))
                .is_some_and(|s| {
                    self.pool
                        .get(s.off as usize..(s.off + s.len) as usize)
                        .is_some_and(|b| b == name.as_bytes())
                });
            if matches {
                return Some(TypeId(t));
            }
            i = (i + 1) & mask;
        }
        None
    }

    /// Whether this dex carries a stored (wire-format) type lookup table.
    pub fn has_lookup_table(&self) -> bool {
        self.lut.is_some()
    }

    /// Whether the lazy fallback probe table was built because no stored
    /// table was present — the pipeline's `lut_rebuilds` counter samples
    /// this after analysis.
    pub fn lookup_table_rebuilt(&self) -> bool {
        self.name_probe.get().is_some()
    }

    /// Mutable slots of the stored lookup table — the corruption module
    /// damages tables through this.
    pub(crate) fn lut_slots_mut(&mut self) -> Option<&mut [u32]> {
        self.lut.as_deref_mut()
    }

    /// Drop the stored lookup-table section, if any. Name lookups fall
    /// back to the lazily built probe table; re-encoding emits the
    /// lut-absent flag. This is the pipeline's `use_lut = false` ablation
    /// knob.
    pub fn discard_lookup_table(&mut self) {
        self.lut = None;
    }

    /// Look up a defined class by binary name.
    pub fn class_by_name(&self, name: &str) -> Option<&ClassDef> {
        self.type_by_name(name).and_then(|t| self.class(t))
    }

    /// Walk the superclass chain of `ty` (excluding `ty` itself), yielding
    /// type ids until the chain leaves the defined set. Allocation-free;
    /// the call-graph resolver and entry-point discovery iterate this per
    /// invoke site / per class, so it must not build a `Vec` each time.
    pub fn superclasses(&self, ty: TypeId) -> Superclasses<'_> {
        Superclasses {
            dex: self,
            cur: self.class(ty).and_then(|c| c.superclass),
        }
    }

    /// Total number of instructions across every defined method — a useful
    /// size metric for benches.
    pub fn instruction_count(&self) -> usize {
        self.classes
            .iter()
            .flat_map(|c| &c.methods)
            .map(|m| m.code.len())
            .sum()
    }

    /// Serialize to the SDEX wire format.
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::new();
        put_uvarint(&mut body, self.strings.len() as u64);
        for i in 0..self.strings.len() as u32 {
            put_string(&mut body, self.string(i));
        }
        put_uvarint(&mut body, self.types.len() as u64);
        for &s in &self.types {
            put_uvarint(&mut body, s as u64);
        }
        put_uvarint(&mut body, self.methods.len() as u64);
        for m in &self.methods {
            put_uvarint(&mut body, m.class.0 as u64);
            put_uvarint(&mut body, m.name as u64);
            put_uvarint(&mut body, m.descriptor as u64);
        }
        put_uvarint(&mut body, self.classes.len() as u64);
        for c in &self.classes {
            put_uvarint(&mut body, c.ty.0 as u64);
            match c.superclass {
                Some(s) => {
                    body.put_u8(1);
                    put_uvarint(&mut body, s.0 as u64);
                }
                None => body.put_u8(0),
            }
            put_uvarint(&mut body, c.flags.to_bits());
            put_uvarint(&mut body, c.methods.len() as u64);
            for m in &c.methods {
                put_uvarint(&mut body, m.method.0 as u64);
                body.put_u8(m.public as u8 | (m.static_ as u8) << 1);
                put_uvarint(&mut body, m.registers as u64);
                put_uvarint(&mut body, m.code.len() as u64);
                for ins in &m.code {
                    ins.encode(&mut body);
                }
            }
        }
        // v3 lookup-table section: a flag byte, then the stored table
        // verbatim. Emitting the *stored* slots (never recomputing) keeps
        // encoding canonical: decode(encode(d)) == d byte-for-byte.
        match &self.lut {
            Some(slots) => {
                body.put_u8(1);
                put_uvarint(&mut body, slots.len() as u64);
                for &s in slots.iter() {
                    body.put_u32_le(s);
                }
            }
            None => body.put_u8(0),
        }

        let mut out = BytesMut::with_capacity(body.len() + 10);
        out.put_slice(&SDEX_MAGIC);
        out.put_u16_le(SDEX_VERSION);
        out.put_u32_le(adler32(&body));
        out.put_slice(&body);
        out.freeze()
    }

    /// Parse and validate an SDEX blob from a borrowed slice.
    ///
    /// Copies the blob once up front (the span table needs backing bytes
    /// that outlive this call); callers that already hold the blob as
    /// [`Bytes`] — e.g. an SAPK section — should use [`Dex::decode_bytes`],
    /// which shares the buffer instead of copying it.
    pub fn decode(raw: &[u8]) -> Result<Dex, ApkError> {
        Dex::decode_bytes(Bytes::copy_from_slice(raw))
    }

    /// Parse and validate an SDEX blob, zero-copy.
    ///
    /// One linear pass does all validation the old owning decoder did —
    /// UTF-8 over every pool entry, index bounds, instruction opcodes,
    /// checksum, structure — but records `(offset, len)` spans instead of
    /// materializing strings. The returned [`Dex`] keeps `raw` alive via
    /// the `Bytes` refcount; no byte of string data is copied.
    ///
    /// Equivalent to [`Dex::decode_bytes_with`] at [`VerifyPreset::All`].
    pub fn decode_bytes(raw: Bytes) -> Result<Dex, ApkError> {
        Dex::decode_bytes_with(raw, VerifyPreset::All)
    }

    /// Parse an SDEX blob under an explicit [`VerifyPreset`].
    ///
    /// `All` is full validation (the corruption-facing default);
    /// `ChecksumOnly` keeps the Adler-32 gate but skips the per-entry
    /// structural re-validation; `None` additionally skips the checksum.
    /// The trusted presets still parse every table (truncation and varint
    /// malformations are detected — the cursor has to walk the bytes
    /// anyway) and still bounds-check string spans against the blob, so
    /// they can never read out of bounds; what they skip is the *semantic*
    /// re-validation (UTF-8, index ranges, register bounds, hierarchy
    /// acyclicity, lookup-table canonicality) already performed when the
    /// blob was first admitted to the corpus.
    pub fn decode_bytes_with(raw: Bytes, preset: VerifyPreset) -> Result<Dex, ApkError> {
        let verify = preset.checks_structure();
        if raw.len() > u32::MAX as usize {
            // Spans are u32; real SDEX blobs are megabytes, not gigabytes.
            return Err(ApkError::Invalid("sdex blob exceeds 4 GiB"));
        }
        let full: &[u8] = &raw;
        let mut buf: &[u8] = full;
        if buf.remaining() < 4 {
            return Err(ApkError::Truncated { context: "magic" });
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if magic != SDEX_MAGIC {
            return Err(ApkError::BadMagic {
                expected: "SDEX",
                found: magic,
            });
        }
        if buf.remaining() < 6 {
            return Err(ApkError::Truncated { context: "header" });
        }
        let version = buf.get_u16_le();
        if !(SDEX_MIN_VERSION..=SDEX_VERSION).contains(&version) {
            return Err(ApkError::UnsupportedVersion(version));
        }
        let stored = buf.get_u32_le();
        if preset.checks_checksum() {
            let computed = adler32(buf);
            if stored != computed {
                return Err(ApkError::ChecksumMismatch { stored, computed });
            }
        }

        let string_count = get_uvarint(&mut buf)? as usize;
        let mut strings = Vec::with_capacity(string_count.min(1 << 20));
        for _ in 0..string_count {
            let (off, len) = if verify {
                get_string_span(full, &mut buf)?
            } else {
                get_string_span_unchecked(full, &mut buf)?
            };
            strings.push(StrSpan { off, len });
        }

        let type_count = get_uvarint(&mut buf)? as usize;
        let mut types = Vec::with_capacity(type_count.min(1 << 20));
        for _ in 0..type_count {
            let s = get_uvarint(&mut buf)? as u32;
            if verify {
                check_index("string", s, strings.len())?;
            }
            types.push(s);
        }

        let method_count = get_uvarint(&mut buf)? as usize;
        let mut methods = Vec::with_capacity(method_count.min(1 << 20));
        for _ in 0..method_count {
            let class = TypeId(get_uvarint(&mut buf)? as u32);
            let name = get_uvarint(&mut buf)? as u32;
            let descriptor = get_uvarint(&mut buf)? as u32;
            if verify {
                check_index("type", class.0, types.len())?;
                check_index("string", name, strings.len())?;
                check_index("string", descriptor, strings.len())?;
            }
            methods.push(MethodRef {
                class,
                name,
                descriptor,
            });
        }

        let class_count = get_uvarint(&mut buf)? as usize;
        let mut classes = Vec::with_capacity(class_count.min(1 << 20));
        let mut class_index = vec![NO_CLASS; types.len()].into_boxed_slice();
        for _ in 0..class_count {
            let ty = TypeId(get_uvarint(&mut buf)? as u32);
            if verify {
                check_index("type", ty.0, types.len())?;
            }
            if !buf.has_remaining() {
                return Err(ApkError::Truncated {
                    context: "superclass flag",
                });
            }
            let superclass = match buf.get_u8() {
                0 => None,
                _ => {
                    let s = TypeId(get_uvarint(&mut buf)? as u32);
                    if verify {
                        check_index("type", s.0, types.len())?;
                    }
                    Some(s)
                }
            };
            let flags = ClassFlags::from_bits(get_uvarint(&mut buf)?);
            let def_count = get_uvarint(&mut buf)? as usize;
            let mut defs = Vec::with_capacity(def_count.min(1 << 16));
            for _ in 0..def_count {
                let method = MethodId(get_uvarint(&mut buf)? as u32);
                if verify {
                    check_index("method", method.0, methods.len())?;
                }
                if !buf.has_remaining() {
                    return Err(ApkError::Truncated {
                        context: "method flags",
                    });
                }
                let fl = buf.get_u8();
                let registers = if version >= 2 {
                    get_uvarint(&mut buf)? as u32
                } else {
                    // Version-1 operands all lower onto v0.
                    1
                };
                let code_len = get_uvarint(&mut buf)? as usize;
                let mut code = Vec::with_capacity(code_len.min(1 << 16));
                for _ in 0..code_len {
                    let ins = Instruction::decode(&mut buf, version)?;
                    if verify {
                        validate_instruction(
                            &ins,
                            strings.len(),
                            types.len(),
                            methods.len(),
                            registers,
                        )?;
                    }
                    code.push(ins);
                }
                defs.push(MethodDef {
                    method,
                    public: fl & 1 != 0,
                    static_: fl & 2 != 0,
                    registers,
                    code,
                });
            }
            match class_index.get_mut(ty.0 as usize) {
                Some(slot) if *slot == NO_CLASS => *slot = classes.len() as u32,
                Some(_) => return Err(ApkError::Invalid("duplicate class definition")),
                // A type id past the table is only reachable under trusted
                // presets (`All` rejected it via `check_index` above);
                // tolerate it — the class stays in `classes` but cannot be
                // found by type lookup, the same garbage-in posture as
                // `probe_lut`.
                None => {}
            }
            classes.push(ClassDef {
                ty,
                superclass,
                flags,
                methods: defs,
            });
        }

        let lut = if version >= 3 {
            if !buf.has_remaining() {
                return Err(ApkError::Truncated {
                    context: "lookup-table flag",
                });
            }
            match buf.get_u8() {
                0 => None,
                _ => {
                    let slot_count = get_uvarint(&mut buf)? as usize;
                    // Size guards run under every preset: the remaining-bytes
                    // check stops a forged count from driving a huge
                    // allocation, and the probe mask needs a power of two.
                    if buf.remaining() / 4 < slot_count {
                        return Err(ApkError::Truncated {
                            context: "lookup-table slots",
                        });
                    }
                    if !slot_count.is_power_of_two() {
                        return Err(ApkError::Invalid("lookup table size not a power of two"));
                    }
                    let mut slots = Vec::with_capacity(slot_count);
                    for _ in 0..slot_count {
                        slots.push(buf.get_u32_le());
                    }
                    let slots = slots.into_boxed_slice();
                    if verify {
                        for &v in slots.iter() {
                            if v != 0 {
                                check_index("type", v - 1, types.len())?;
                            }
                        }
                        let canonical = build_type_lut(types.len(), |t| {
                            let s = strings[types[t as usize] as usize];
                            &full[s.off as usize..(s.off + s.len) as usize]
                        });
                        if canonical != slots {
                            return Err(ApkError::Invalid("lookup table mismatch"));
                        }
                    }
                    Some(slots)
                }
            }
        } else {
            None
        };

        if buf.has_remaining() {
            return Err(ApkError::Invalid("trailing bytes after class table"));
        }

        let dex = Dex {
            pool: raw,
            strings,
            types,
            methods,
            classes,
            class_index,
            lut,
            name_probe: OnceLock::new(),
        };
        if verify {
            dex.validate_hierarchy()?;
        }
        Ok(dex)
    }

    /// Reject superclass cycles among defined classes.
    fn validate_hierarchy(&self) -> Result<(), ApkError> {
        for c in &self.classes {
            let mut seen = 0usize;
            let mut cur = c.superclass;
            while let Some(s) = cur {
                seen += 1;
                if seen > self.classes.len() {
                    return Err(ApkError::Invalid("superclass cycle"));
                }
                cur = self.class(s).and_then(|d| d.superclass);
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Dex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Resolve the pool for readable test diffs instead of dumping spans
        // plus a byte soup.
        let strings: Vec<&str> = (0..self.strings.len() as u32)
            .map(|i| self.string(i))
            .collect();
        f.debug_struct("Dex")
            .field("strings", &strings)
            .field("types", &self.types)
            .field("methods", &self.methods)
            .field("classes", &self.classes)
            .finish()
    }
}

/// Equality by content: two dexes are equal when their resolved string
/// pools and tables match, regardless of whether the pool bytes live in a
/// decoded blob or a builder-packed buffer.
impl PartialEq for Dex {
    fn eq(&self, other: &Self) -> bool {
        self.strings.len() == other.strings.len()
            && (0..self.strings.len() as u32).all(|i| self.string(i) == other.string(i))
            && self.types == other.types
            && self.methods == other.methods
            && self.classes == other.classes
    }
}

impl Eq for Dex {}

/// Iterator over the defined ancestors of a type, produced by
/// [`Dex::superclasses`]. Terminates because `Dex::decode` rejects
/// superclass cycles (builder-made dexes are trusted the same way).
#[derive(Debug, Clone)]
pub struct Superclasses<'d> {
    dex: &'d Dex,
    cur: Option<TypeId>,
}

impl Iterator for Superclasses<'_> {
    type Item = TypeId;

    fn next(&mut self) -> Option<TypeId> {
        let s = self.cur?;
        self.cur = self.dex.class(s).and_then(|c| c.superclass);
        Some(s)
    }
}

/// 32-bit FNV-1a over a type's binary name — the lookup-table hash.
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h = 0x811c_9dc5u32;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Slot count for a lookup table over `type_count` entries: the next power
/// of two at or above twice the entry count, so load factor stays ≤ 0.5 and
/// linear probe chains stay short. A typeless dex gets a single empty slot.
fn lut_slot_count(type_count: usize) -> usize {
    (type_count * 2).next_power_of_two()
}

/// Build the canonical type lookup table: open addressing with linear
/// probing, slots storing `type_index + 1` (`0` = empty). Types are
/// inserted in table order, so among duplicate names the smallest type id
/// sits earliest on its probe chain — probing preserves the first-match
/// semantics of the linear scan it replaces.
fn build_type_lut<'a>(type_count: usize, name_of: impl Fn(u32) -> &'a [u8]) -> Box<[u32]> {
    let cap = lut_slot_count(type_count);
    let mut slots = vec![0u32; cap].into_boxed_slice();
    let mask = cap - 1;
    for t in 0..type_count as u32 {
        let mut i = fnv1a(name_of(t)) as usize & mask;
        while slots[i] != 0 {
            i = (i + 1) & mask;
        }
        slots[i] = t + 1;
    }
    slots
}

fn check_index(table: &'static str, index: u32, len: usize) -> Result<(), ApkError> {
    if (index as usize) < len {
        Ok(())
    } else {
        Err(ApkError::IndexOutOfRange {
            table,
            index,
            len: len as u32,
        })
    }
}

fn validate_instruction(
    ins: &Instruction,
    strings: usize,
    types: usize,
    methods: usize,
    registers: u32,
) -> Result<(), ApkError> {
    let check_reg = |r: Reg| check_index("register", r.0 as u32, registers as usize);
    match ins {
        Instruction::Invoke { method, args, .. } => {
            check_index("method", method.0, methods)?;
            args.iter().try_for_each(|&a| check_reg(a))
        }
        Instruction::ConstString { dst, string } => {
            check_index("string", *string, strings)?;
            check_reg(*dst)
        }
        Instruction::Move { dst, src } => {
            check_reg(*dst)?;
            check_reg(*src)
        }
        Instruction::NewInstance { ty } => check_index("type", ty.0, types),
        _ => Ok(()),
    }
}

/// Incremental writer for [`Dex`] files with interning of strings, types,
/// and method references. This is what the corpus generator lowers app
/// behaviour through.
#[derive(Debug, Default)]
pub struct DexBuilder {
    strings: Vec<String>,
    string_index: HashMap<String, u32>,
    types: Vec<u32>,
    type_index: HashMap<u32, TypeId>,
    methods: Vec<MethodRef>,
    method_index: HashMap<(TypeId, u32, u32), MethodId>,
    classes: Vec<ClassDef>,
    class_index: HashMap<TypeId, usize>,
}

impl DexBuilder {
    /// Fresh empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a string, returning its pool index.
    pub fn intern_string(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.string_index.get(s) {
            return i;
        }
        let i = self.strings.len() as u32;
        self.strings.push(s.to_owned());
        self.string_index.insert(s.to_owned(), i);
        i
    }

    /// Intern a type by binary name.
    pub fn intern_type(&mut self, name: &str) -> TypeId {
        let s = self.intern_string(name);
        if let Some(&t) = self.type_index.get(&s) {
            return t;
        }
        let t = TypeId(self.types.len() as u32);
        self.types.push(s);
        self.type_index.insert(s, t);
        t
    }

    /// Intern a method reference.
    pub fn intern_method(&mut self, class: &str, name: &str, descriptor: &str) -> MethodId {
        let class = self.intern_type(class);
        let name = self.intern_string(name);
        let descriptor = self.intern_string(descriptor);
        let key = (class, name, descriptor);
        if let Some(&m) = self.method_index.get(&key) {
            return m;
        }
        let m = MethodId(self.methods.len() as u32);
        self.methods.push(MethodRef {
            class,
            name,
            descriptor,
        });
        self.method_index.insert(key, m);
        m
    }

    /// Define a class. Returns an error token if the class already exists.
    pub fn define_class(
        &mut self,
        name: &str,
        superclass: Option<&str>,
        flags: ClassFlags,
        methods: Vec<MethodDef>,
    ) -> Result<TypeId, ApkError> {
        let ty = self.intern_type(name);
        if self.class_index.contains_key(&ty) {
            return Err(ApkError::Invalid("duplicate class definition"));
        }
        let superclass = superclass.map(|s| self.intern_type(s));
        self.class_index.insert(ty, self.classes.len());
        self.classes.push(ClassDef {
            ty,
            superclass,
            flags,
            methods,
        });
        Ok(ty)
    }

    /// Whether a class with this name is already defined.
    pub fn has_class(&self, name: &str) -> bool {
        self.string_index
            .get(name)
            .and_then(|s| self.type_index.get(s))
            .is_some_and(|t| self.class_index.contains_key(t))
    }

    /// Finish, producing an immutable [`Dex`]. The interned strings are
    /// packed into one contiguous pool so lookups go through the same span
    /// path as decoded files.
    pub fn build(self) -> Dex {
        let total: usize = self.strings.iter().map(String::len).sum();
        let mut pool = BytesMut::with_capacity(total);
        let mut spans = Vec::with_capacity(self.strings.len());
        for s in &self.strings {
            spans.push(StrSpan {
                off: pool.len() as u32,
                len: s.len() as u32,
            });
            pool.put_slice(s.as_bytes());
        }
        let pool = pool.freeze();
        // Builder-made dexes always carry the lookup table, so every
        // generator-produced blob encodes the v3 section and decoded
        // corpora get O(1) name lookups without a lazy rebuild.
        let lut = build_type_lut(self.types.len(), |t| {
            let s = spans[self.types[t as usize] as usize];
            &pool[s.off as usize..(s.off + s.len) as usize]
        });
        let mut class_index = vec![NO_CLASS; self.types.len()].into_boxed_slice();
        for (ty, i) in self.class_index {
            class_index[ty.0 as usize] = i as u32;
        }
        Dex {
            pool,
            strings: spans,
            types: self.types,
            methods: self.methods,
            classes: self.classes,
            class_index,
            lut: Some(lut),
            name_probe: OnceLock::new(),
        }
    }
}

/// The pre-zero-copy owning decoder, kept as an equivalence oracle.
///
/// [`Dex::decode_bytes`] validates in one pass and records spans;
/// [`decode`](oracle::decode) here materializes an owned `String` per pool
/// entry, exactly as the parser shipped before the zero-copy refactor. The
/// property suite in `tests/decode_equivalence.rs` pins the two together:
/// identical `Ok` structures and identical [`ApkError`] kinds over valid
/// blobs and every `corrupt.rs` mutation.
pub mod oracle {
    use super::*;
    use crate::wire::get_string;

    /// Decoded SDEX with an owned string pool — the old representation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct OwnedDex {
        /// Owned string pool, one allocation per entry.
        pub strings: Vec<String>,
        /// Type table (string-pool indices).
        pub types: Vec<u32>,
        /// Method table.
        pub methods: Vec<MethodRef>,
        /// Defined classes.
        pub classes: Vec<ClassDef>,
    }

    /// Structural equality against the zero-copy representation: the pools
    /// resolve to the same strings and the tables match.
    impl PartialEq<OwnedDex> for Dex {
        fn eq(&self, other: &OwnedDex) -> bool {
            self.string_count() == other.strings.len()
                && (0..other.strings.len() as u32)
                    .all(|i| self.string(i) == other.strings[i as usize])
                && self.types == other.types
                && self.methods == other.methods
                && self.classes == other.classes
        }
    }

    impl PartialEq<Dex> for OwnedDex {
        fn eq(&self, other: &Dex) -> bool {
            other == self
        }
    }

    /// Parse and validate an SDEX blob the old way: owned `String` per
    /// pool entry, identical validation order and error kinds.
    ///
    /// Equivalent to [`decode_with`] at [`VerifyPreset::All`].
    pub fn decode(raw: &[u8]) -> Result<OwnedDex, ApkError> {
        decode_with(raw, VerifyPreset::All)
    }

    /// Preset-aware owning decoder, mirroring [`Dex::decode_bytes_with`]
    /// check for check so the equivalence suite can pin the two across
    /// every preset.
    pub fn decode_with(raw: &[u8], preset: VerifyPreset) -> Result<OwnedDex, ApkError> {
        let verify = preset.checks_structure();
        if raw.len() > u32::MAX as usize {
            // Mirrors the span-width guard in `Dex::decode_bytes` so the
            // two decoders stay equivalent on every input.
            return Err(ApkError::Invalid("sdex blob exceeds 4 GiB"));
        }
        let mut buf = raw;
        if buf.remaining() < 4 {
            return Err(ApkError::Truncated { context: "magic" });
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if magic != SDEX_MAGIC {
            return Err(ApkError::BadMagic {
                expected: "SDEX",
                found: magic,
            });
        }
        if buf.remaining() < 6 {
            return Err(ApkError::Truncated { context: "header" });
        }
        let version = buf.get_u16_le();
        if !(SDEX_MIN_VERSION..=SDEX_VERSION).contains(&version) {
            return Err(ApkError::UnsupportedVersion(version));
        }
        let stored = buf.get_u32_le();
        if preset.checks_checksum() {
            let computed = adler32(buf);
            if stored != computed {
                return Err(ApkError::ChecksumMismatch { stored, computed });
            }
        }

        let string_count = get_uvarint(&mut buf)? as usize;
        let mut strings = Vec::with_capacity(string_count.min(1 << 20));
        for _ in 0..string_count {
            strings.push(if verify {
                get_string(&mut buf)?
            } else {
                let len = get_uvarint(&mut buf)? as usize;
                let raw = crate::wire::get_bytes(&mut buf, len, "string")?;
                // SAFETY: the trusted-preset contract — these bytes passed
                // a full `All` decode when first admitted to the corpus.
                unsafe { String::from_utf8_unchecked(raw) }
            });
        }

        let type_count = get_uvarint(&mut buf)? as usize;
        let mut types = Vec::with_capacity(type_count.min(1 << 20));
        for _ in 0..type_count {
            let s = get_uvarint(&mut buf)? as u32;
            if verify {
                check_index("string", s, strings.len())?;
            }
            types.push(s);
        }

        let method_count = get_uvarint(&mut buf)? as usize;
        let mut methods = Vec::with_capacity(method_count.min(1 << 20));
        for _ in 0..method_count {
            let class = TypeId(get_uvarint(&mut buf)? as u32);
            let name = get_uvarint(&mut buf)? as u32;
            let descriptor = get_uvarint(&mut buf)? as u32;
            if verify {
                check_index("type", class.0, types.len())?;
                check_index("string", name, strings.len())?;
                check_index("string", descriptor, strings.len())?;
            }
            methods.push(MethodRef {
                class,
                name,
                descriptor,
            });
        }

        let class_count = get_uvarint(&mut buf)? as usize;
        let mut classes: Vec<ClassDef> = Vec::with_capacity(class_count.min(1 << 20));
        let mut class_index = HashMap::with_capacity(class_count.min(1 << 20));
        for _ in 0..class_count {
            let ty = TypeId(get_uvarint(&mut buf)? as u32);
            if verify {
                check_index("type", ty.0, types.len())?;
            }
            if !buf.has_remaining() {
                return Err(ApkError::Truncated {
                    context: "superclass flag",
                });
            }
            let superclass = match buf.get_u8() {
                0 => None,
                _ => {
                    let s = TypeId(get_uvarint(&mut buf)? as u32);
                    if verify {
                        check_index("type", s.0, types.len())?;
                    }
                    Some(s)
                }
            };
            let flags = ClassFlags::from_bits(get_uvarint(&mut buf)?);
            let def_count = get_uvarint(&mut buf)? as usize;
            let mut defs = Vec::with_capacity(def_count.min(1 << 16));
            for _ in 0..def_count {
                let method = MethodId(get_uvarint(&mut buf)? as u32);
                if verify {
                    check_index("method", method.0, methods.len())?;
                }
                if !buf.has_remaining() {
                    return Err(ApkError::Truncated {
                        context: "method flags",
                    });
                }
                let fl = buf.get_u8();
                let registers = if version >= 2 {
                    get_uvarint(&mut buf)? as u32
                } else {
                    // Version-1 operands all lower onto v0.
                    1
                };
                let code_len = get_uvarint(&mut buf)? as usize;
                let mut code = Vec::with_capacity(code_len.min(1 << 16));
                for _ in 0..code_len {
                    let ins = Instruction::decode(&mut buf, version)?;
                    if verify {
                        validate_instruction(
                            &ins,
                            strings.len(),
                            types.len(),
                            methods.len(),
                            registers,
                        )?;
                    }
                    code.push(ins);
                }
                defs.push(MethodDef {
                    method,
                    public: fl & 1 != 0,
                    static_: fl & 2 != 0,
                    registers,
                    code,
                });
            }
            if class_index.insert(ty, classes.len()).is_some() {
                return Err(ApkError::Invalid("duplicate class definition"));
            }
            classes.push(ClassDef {
                ty,
                superclass,
                flags,
                methods: defs,
            });
        }

        // v3 lookup-table section: parsed (and at `All` verified) exactly
        // like the zero-copy decoder, then dropped — the owning
        // representation predates the section and name lookups on it are
        // not on any hot path.
        if version >= 3 {
            if !buf.has_remaining() {
                return Err(ApkError::Truncated {
                    context: "lookup-table flag",
                });
            }
            if buf.get_u8() != 0 {
                let slot_count = get_uvarint(&mut buf)? as usize;
                if buf.remaining() / 4 < slot_count {
                    return Err(ApkError::Truncated {
                        context: "lookup-table slots",
                    });
                }
                if !slot_count.is_power_of_two() {
                    return Err(ApkError::Invalid("lookup table size not a power of two"));
                }
                let mut slots = Vec::with_capacity(slot_count);
                for _ in 0..slot_count {
                    slots.push(buf.get_u32_le());
                }
                let slots = slots.into_boxed_slice();
                if verify {
                    for &v in slots.iter() {
                        if v != 0 {
                            check_index("type", v - 1, types.len())?;
                        }
                    }
                    let canonical = build_type_lut(types.len(), |t| {
                        strings[types[t as usize] as usize].as_bytes()
                    });
                    if canonical != slots {
                        return Err(ApkError::Invalid("lookup table mismatch"));
                    }
                }
            }
        }

        if buf.has_remaining() {
            return Err(ApkError::Invalid("trailing bytes after class table"));
        }

        // Cycle check, same walk as `Dex::validate_hierarchy`.
        if verify {
            for c in &classes {
                let mut seen = 0usize;
                let mut cur = c.superclass;
                while let Some(s) = cur {
                    seen += 1;
                    if seen > classes.len() {
                        return Err(ApkError::Invalid("superclass cycle"));
                    }
                    cur = class_index.get(&s).and_then(|&i| classes[i].superclass);
                }
            }
        }

        Ok(OwnedDex {
            strings,
            types,
            methods,
            classes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small but structurally complete dex: an activity whose `onCreate`
    /// calls an SDK helper which calls `WebView.loadUrl`.
    pub(crate) fn sample_dex() -> Dex {
        let mut b = DexBuilder::new();
        let load_url =
            b.intern_method("android/webkit/WebView", "loadUrl", "(Ljava/lang/String;)V");
        let url = b.intern_string("https://ads.example.net/creative");
        let helper = b.intern_method("com/applovin/adview/AdRenderer", "render", "()V");
        b.define_class(
            "com/applovin/adview/AdRenderer",
            Some("java/lang/Object"),
            ClassFlags {
                public: true,
                ..Default::default()
            },
            vec![MethodDef::new(
                helper,
                true,
                false,
                vec![
                    Instruction::ConstString {
                        dst: Reg(0),
                        string: url,
                    },
                    Instruction::Invoke {
                        kind: InvokeKind::Virtual,
                        method: load_url,
                        args: vec![Reg(0)],
                    },
                    Instruction::ReturnVoid,
                ],
            )],
        )
        .unwrap();
        let on_create = b.intern_method("com/example/app/MainActivity", "onCreate", "(B)V");
        b.define_class(
            "com/example/app/MainActivity",
            Some("android/app/Activity"),
            ClassFlags {
                public: true,
                ..Default::default()
            },
            vec![MethodDef::new(
                on_create,
                true,
                false,
                vec![
                    Instruction::Invoke {
                        kind: InvokeKind::Virtual,
                        method: helper,
                        args: vec![],
                    },
                    Instruction::ReturnVoid,
                ],
            )],
        )
        .unwrap();
        b.build()
    }

    #[test]
    fn roundtrip_sample() {
        let dex = sample_dex();
        let bytes = dex.encode();
        let back = Dex::decode(&bytes).unwrap();
        assert_eq!(dex, back);
    }

    #[test]
    fn decode_bytes_is_zero_copy() {
        let blob = sample_dex().encode();
        let back = Dex::decode_bytes(blob.clone()).unwrap();
        // The resolved strings point into the blob itself, not a copy.
        let range = blob.as_ptr() as usize..blob.as_ptr() as usize + blob.len();
        for i in 0..back.string_count() as u32 {
            let s = back.string(i);
            assert!(
                s.is_empty() || range.contains(&(s.as_ptr() as usize)),
                "string {i} was copied out of the blob"
            );
        }
        assert_eq!(back, sample_dex());
    }

    #[test]
    fn oracle_matches_zero_copy_on_sample() {
        let bytes = sample_dex().encode();
        let zc = Dex::decode(&bytes).unwrap();
        let owned = oracle::decode(&bytes).unwrap();
        assert_eq!(zc, owned);
        assert_eq!(owned, zc);
    }

    #[test]
    fn builder_interns() {
        let mut b = DexBuilder::new();
        let a = b.intern_string("x");
        let a2 = b.intern_string("x");
        assert_eq!(a, a2);
        let t = b.intern_type("com/example/T");
        let t2 = b.intern_type("com/example/T");
        assert_eq!(t, t2);
        let m = b.intern_method("com/example/T", "f", "()V");
        let m2 = b.intern_method("com/example/T", "f", "()V");
        assert_eq!(m, m2);
        let m3 = b.intern_method("com/example/T", "f", "(I)V");
        assert_ne!(m, m3);
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut b = DexBuilder::new();
        b.define_class("com/x/A", None, ClassFlags::default(), vec![])
            .unwrap();
        assert!(b
            .define_class("com/x/A", None, ClassFlags::default(), vec![])
            .is_err());
    }

    #[test]
    fn lookup_helpers() {
        let dex = sample_dex();
        let act = dex.class_by_name("com/example/app/MainActivity").unwrap();
        assert_eq!(dex.type_name(act.ty), "com/example/app/MainActivity");
        assert_eq!(
            dex.type_name(act.superclass.unwrap()),
            "android/app/Activity"
        );
        assert!(dex.class_by_name("missing/Class").is_none());
        let wv = dex.type_by_name("android/webkit/WebView").unwrap();
        // WebView is referenced but not defined here.
        assert!(dex.class(wv).is_none());
    }

    #[test]
    fn checksum_detects_flip() {
        let bytes = sample_dex().encode().to_vec();
        let mut bad = bytes.clone();
        let i = bytes.len() - 3;
        bad[i] ^= 0x40;
        match Dex::decode(&bad) {
            Err(ApkError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_dex().encode().to_vec();
        bytes[0] = b'Z';
        assert!(matches!(
            Dex::decode(&bytes),
            Err(ApkError::BadMagic {
                expected: "SDEX",
                ..
            })
        ));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut bytes = sample_dex().encode().to_vec();
        bytes[4] = 0xff; // version LE low byte
        assert!(matches!(
            Dex::decode(&bytes),
            Err(ApkError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = sample_dex().encode();
        for cut in 0..bytes.len() {
            assert!(
                Dex::decode(&bytes[..cut]).is_err(),
                "decode accepted a {cut}-byte prefix of a {}-byte file",
                bytes.len()
            );
        }
    }

    #[test]
    fn superclass_cycle_rejected() {
        // Hand-assemble a dex whose A extends B extends A.
        let mut b = DexBuilder::new();
        b.intern_type("com/x/A");
        b.intern_type("com/x/B");
        let mut dex = b.build();
        let a = dex.type_by_name("com/x/A").unwrap();
        let bb = dex.type_by_name("com/x/B").unwrap();
        dex.classes.push(ClassDef {
            ty: a,
            superclass: Some(bb),
            flags: ClassFlags::default(),
            methods: vec![],
        });
        dex.classes.push(ClassDef {
            ty: bb,
            superclass: Some(a),
            flags: ClassFlags::default(),
            methods: vec![],
        });
        dex.class_index[a.0 as usize] = 0;
        dex.class_index[bb.0 as usize] = 1;
        let bytes = dex.encode();
        assert_eq!(
            Dex::decode(&bytes),
            Err(ApkError::Invalid("superclass cycle"))
        );
    }

    #[test]
    fn superclasses_walks_defined_classes() {
        let mut b = DexBuilder::new();
        let m = b.intern_method("com/x/C", "f", "()V");
        b.define_class(
            "com/x/A",
            Some("android/webkit/WebView"),
            ClassFlags::default(),
            vec![],
        )
        .unwrap();
        b.define_class("com/x/B", Some("com/x/A"), ClassFlags::default(), vec![])
            .unwrap();
        b.define_class(
            "com/x/C",
            Some("com/x/B"),
            ClassFlags::default(),
            vec![MethodDef::new(
                m,
                true,
                false,
                vec![Instruction::ReturnVoid],
            )],
        )
        .unwrap();
        let dex = b.build();
        let c = dex.type_by_name("com/x/C").unwrap();
        let chain: Vec<_> = dex
            .superclasses(c)
            .map(|t| dex.type_name(t).to_owned())
            .collect();
        assert_eq!(chain, ["com/x/B", "com/x/A", "android/webkit/WebView"]);
    }

    #[test]
    fn instruction_count() {
        assert_eq!(sample_dex().instruction_count(), 5);
    }

    #[test]
    fn trailing_garbage_rejected() {
        // Appending bytes invalidates the checksum; fixing the checksum then
        // trips the trailing-bytes rule. Cover the latter path directly.
        let dex = sample_dex();
        let encoded = dex.encode();
        let mut body = encoded[10..].to_vec();
        body.push(0x00);
        let mut forged = Vec::new();
        forged.extend_from_slice(&SDEX_MAGIC);
        forged.extend_from_slice(&SDEX_VERSION.to_le_bytes());
        forged.extend_from_slice(&crate::wire::adler32(&body).to_le_bytes());
        forged.extend_from_slice(&body);
        assert!(matches!(Dex::decode(&forged), Err(ApkError::Invalid(_))));
    }

    #[test]
    fn empty_dex_roundtrips() {
        let dex = DexBuilder::new().build();
        let back = Dex::decode(&dex.encode()).unwrap();
        assert_eq!(back.classes().len(), 0);
        assert_eq!(back.string_count(), 0);
    }

    #[test]
    fn register_shuffled_code_roundtrips() {
        let mut b = DexBuilder::new();
        let load_url =
            b.intern_method("android/webkit/WebView", "loadUrl", "(Ljava/lang/String;)V");
        let url = b.intern_string("https://cdn.example/page");
        let decoy = b.intern_string("decoy");
        let m = b.intern_method("com/x/A", "go", "()V");
        b.define_class(
            "com/x/A",
            None,
            ClassFlags::default(),
            vec![MethodDef::new(
                m,
                true,
                false,
                vec![
                    Instruction::ConstString {
                        dst: Reg(0),
                        string: url,
                    },
                    Instruction::ConstString {
                        dst: Reg(1),
                        string: decoy,
                    },
                    Instruction::Move {
                        dst: Reg(2),
                        src: Reg(0),
                    },
                    Instruction::Invoke {
                        kind: InvokeKind::Virtual,
                        method: load_url,
                        args: vec![Reg(2)],
                    },
                    Instruction::ReturnVoid,
                ],
            )],
        )
        .unwrap();
        let dex = b.build();
        assert_eq!(dex.classes()[0].methods[0].registers, 3);
        let back = Dex::decode(&dex.encode()).unwrap();
        assert_eq!(dex, back);
        let owned = oracle::decode(&dex.encode()).unwrap();
        assert_eq!(back, owned);
    }

    #[test]
    fn out_of_range_register_rejected() {
        // Hand-build a def whose register count is too small for its code;
        // the encoder trusts it, the decoder must not.
        let mut b = DexBuilder::new();
        let url = b.intern_string("https://x.example");
        let m = b.intern_method("com/x/A", "f", "()V");
        b.define_class(
            "com/x/A",
            None,
            ClassFlags::default(),
            vec![MethodDef {
                method: m,
                public: true,
                static_: false,
                registers: 1,
                code: vec![
                    Instruction::ConstString {
                        dst: Reg(4),
                        string: url,
                    },
                    Instruction::ReturnVoid,
                ],
            }],
        )
        .unwrap();
        let bytes = b.build().encode();
        for result in [
            Dex::decode(&bytes).err().map(|e| format!("{e:?}")),
            oracle::decode(&bytes).err().map(|e| format!("{e:?}")),
        ] {
            let err = result.expect("decoder accepted an out-of-range register");
            assert!(err.contains("register"), "unexpected error: {err}");
        }
    }

    /// Hand-assemble a version-1 body (no register operands on the wire).
    /// `count` is the instruction count; `code` the pre-encoded bytes.
    fn v1_blob(count: u64, code: &[u8]) -> Vec<u8> {
        let mut body = BytesMut::new();
        // strings: "com/x/A", "f", "()V", "https://v1.example"
        put_uvarint(&mut body, 4);
        for s in ["com/x/A", "f", "()V", "https://v1.example"] {
            put_string(&mut body, s);
        }
        // types: [string 0]
        put_uvarint(&mut body, 1);
        put_uvarint(&mut body, 0);
        // methods: [(type 0, name 1, desc 2)]
        put_uvarint(&mut body, 1);
        for idx in [0u64, 1, 2] {
            put_uvarint(&mut body, idx);
        }
        // one class: type 0, no superclass, public, one method
        put_uvarint(&mut body, 1);
        put_uvarint(&mut body, 0);
        body.put_u8(0);
        put_uvarint(
            &mut body,
            ClassFlags {
                public: true,
                ..Default::default()
            }
            .to_bits(),
        );
        put_uvarint(&mut body, 1);
        put_uvarint(&mut body, 0); // method id
        body.put_u8(1); // public
                        // no `registers` varint in version 1
        put_uvarint(&mut body, count);
        body.put_slice(code);
        let mut out = Vec::new();
        out.extend_from_slice(&SDEX_MAGIC);
        out.extend_from_slice(&1u16.to_le_bytes());
        out.extend_from_slice(&adler32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    #[test]
    fn version1_blob_decodes_onto_v0() {
        // const-string #3; invoke-virtual kind=0 method=0; return-void —
        // the old adjacency layout, one byte-coded instruction each.
        let blob = v1_blob(3, &[OP_CONST_STRING, 3, OP_INVOKE, 0, 0, OP_RETURN_VOID]);
        let dex = Dex::decode(&blob).unwrap();
        let m = &dex.classes()[0].methods[0];
        assert_eq!(m.registers, 1);
        assert_eq!(
            m.code,
            vec![
                Instruction::ConstString {
                    dst: Reg(0),
                    string: 3,
                },
                Instruction::Invoke {
                    kind: InvokeKind::Virtual,
                    method: MethodId(0),
                    args: vec![Reg(0)],
                },
                Instruction::ReturnVoid,
            ]
        );
        // The oracle decoder takes the identical compatibility path.
        let owned = oracle::decode(&blob).unwrap();
        assert_eq!(dex, owned);
        // Re-encoding upgrades to the current version.
        let upgraded = Dex::decode(&dex.encode()).unwrap();
        assert_eq!(dex, upgraded);
    }

    #[test]
    fn move_opcode_invalid_in_version1() {
        let blob = v1_blob(2, &[OP_MOVE, 0, 0, OP_RETURN_VOID]);
        assert!(matches!(
            Dex::decode(&blob),
            Err(ApkError::BadOpcode(OP_MOVE))
        ));
        assert!(matches!(
            oracle::decode(&blob),
            Err(ApkError::BadOpcode(OP_MOVE))
        ));
    }

    #[test]
    fn trusted_presets_decode_valid_blobs_identically() {
        let dex = sample_dex();
        let blob = dex.encode();
        for preset in [
            VerifyPreset::All,
            VerifyPreset::ChecksumOnly,
            VerifyPreset::None,
        ] {
            let zc = Dex::decode_bytes_with(blob.clone(), preset).unwrap();
            assert_eq!(zc, dex, "{preset:?}");
            let owned = oracle::decode_with(&blob, preset).unwrap();
            assert_eq!(zc, owned, "{preset:?}");
        }
    }

    #[test]
    fn preset_gates_engage_in_order() {
        // A flipped body byte: All and ChecksumOnly stop at the adler gate,
        // None sails past it (the damage lands in an instruction stream the
        // trusted parse still walks structurally).
        let blob = sample_dex().encode().to_vec();
        let mut bad = blob.clone();
        let i = blob.len() - 3;
        bad[i] ^= 0x40;
        for preset in [VerifyPreset::All, VerifyPreset::ChecksumOnly] {
            assert!(matches!(
                Dex::decode_bytes_with(Bytes::from(bad.clone()), preset),
                Err(ApkError::ChecksumMismatch { .. })
            ));
        }
        // Under None the checksum is not consulted at all — whatever
        // happens next is a structural parse outcome, never a mismatch.
        assert!(!matches!(
            Dex::decode_bytes_with(Bytes::from(bad), VerifyPreset::None),
            Err(ApkError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn lookup_table_probe_matches_linear_scan() {
        let dex = sample_dex();
        assert!(dex.has_lookup_table());
        for t in dex.type_ids() {
            let name = dex.type_name(t).to_owned();
            let scan = dex.type_ids().find(|&u| dex.type_name(u) == name);
            assert_eq!(dex.type_by_name(&name), scan, "{name}");
        }
        assert_eq!(dex.type_by_name("missing/Class"), None);
        // The stored table survives the wire roundtrip and probes the same.
        let back = Dex::decode_bytes(dex.encode()).unwrap();
        assert!(back.has_lookup_table());
        assert!(!back.lookup_table_rebuilt());
        for t in back.type_ids() {
            let name = back.type_name(t).to_owned();
            assert_eq!(back.type_by_name(&name), Some(t));
        }
    }

    #[test]
    fn lazy_probe_table_builds_without_wire_section() {
        // A v1 blob has no lookup-table section; the first name lookup
        // builds the fallback probe table once.
        let blob = v1_blob(1, &[OP_RETURN_VOID]);
        let dex = Dex::decode(&blob).unwrap();
        assert!(!dex.has_lookup_table());
        assert!(!dex.lookup_table_rebuilt());
        assert_eq!(dex.type_by_name("com/x/A"), Some(TypeId(0)));
        assert!(dex.lookup_table_rebuilt());
        assert_eq!(dex.type_by_name("com/x/B"), None);
    }

    #[test]
    fn damaged_lookup_table_rejected_at_all() {
        let mut dex = sample_dex();
        let type_count = dex.type_count() as u32;
        {
            let slots = dex.lut_slots_mut().unwrap();
            let i = slots.iter().position(|&v| v != 0).unwrap();
            // In-range but wrong slot value: caught by the canonical
            // rebuild compare, not the per-slot bounds check.
            slots[i] = (slots[i] % type_count) + 1;
        }
        let blob = dex.encode(); // restamps the checksum over the bad table
        match Dex::decode_bytes(blob.clone()) {
            Err(ApkError::Invalid("lookup table mismatch"))
            | Err(ApkError::IndexOutOfRange { .. }) => {}
            other => panic!("damaged table accepted: {other:?}"),
        }
        // Trusted presets take the stored table at face value.
        assert!(Dex::decode_bytes_with(blob, VerifyPreset::ChecksumOnly).is_ok());
    }

    #[test]
    fn absent_lookup_table_flag_roundtrips() {
        // A v3 body with flag 0 (no table) decodes and re-encodes as-is.
        let dex = sample_dex();
        let blob = dex.encode();
        // Strip the lut by decoding a v2-shaped body: reuse the v1 helper's
        // idea — here just check a decoded v1 re-encode carries flag 0.
        let v1 = Dex::decode(&v1_blob(1, &[OP_RETURN_VOID])).unwrap();
        assert!(!v1.has_lookup_table());
        let re = v1.encode();
        let back = Dex::decode(&re).unwrap();
        assert!(!back.has_lookup_table());
        assert_eq!(v1, back);
        // And the sample's stored table re-encodes verbatim (canonicality).
        assert_eq!(
            &Dex::decode_bytes(blob.clone()).unwrap().encode()[..],
            &blob[..]
        );
    }

    /// Hand-assemble the sample dex body at wire version 2 (registers, no
    /// lookup-table section) to pin decode compatibility.
    fn v2_blob() -> Vec<u8> {
        let dex = sample_dex();
        let v3 = dex.encode();
        // The v3 body is the v2 body plus the trailing lut section; strip
        // the section (flag byte + count varint + slots) and re-stamp.
        let slots = match &dex.lut {
            Some(s) => s.len(),
            None => unreachable!("builder dexes carry a lut"),
        };
        let mut count_len = Vec::new();
        put_uvarint(&mut count_len, slots as u64);
        let body_end = v3.len() - (1 + count_len.len() + slots * 4);
        let body = &v3[10..body_end];
        let mut out = Vec::new();
        out.extend_from_slice(&SDEX_MAGIC);
        out.extend_from_slice(&2u16.to_le_bytes());
        out.extend_from_slice(&adler32(body).to_le_bytes());
        out.extend_from_slice(body);
        out
    }

    #[test]
    fn version2_blob_decodes_without_lut() {
        let blob = v2_blob();
        let dex = Dex::decode(&blob).unwrap();
        assert!(!dex.has_lookup_table());
        assert_eq!(dex, sample_dex());
        let owned = oracle::decode(&blob).unwrap();
        assert_eq!(dex, owned);
        // Name lookups still work through the lazy fallback table.
        assert!(dex.type_by_name("android/webkit/WebView").is_some());
        assert!(dex.lookup_table_rebuilt());
    }

    #[test]
    fn oversized_invoke_arg_count_rejected() {
        let mut b = DexBuilder::new();
        let m = b.intern_method("com/x/A", "f", "()V");
        let callee = b.intern_method("com/x/A", "g", "()V");
        b.define_class(
            "com/x/A",
            None,
            ClassFlags::default(),
            vec![MethodDef {
                method: m,
                public: true,
                static_: false,
                registers: 300,
                code: vec![Instruction::Invoke {
                    kind: InvokeKind::Static,
                    method: callee,
                    args: (0..300).map(Reg).collect(),
                }],
            }],
        )
        .unwrap();
        let bytes = b.build().encode();
        assert!(matches!(
            Dex::decode(&bytes),
            Err(ApkError::Invalid("invoke argument count exceeds 255"))
        ));
    }
}
