//! Structured parse/encode errors for the SAPK and SDEX formats.

use std::fmt;

/// Any failure while decoding a SAPK container or SDEX blob.
///
/// Parsers in this crate never panic on malformed input; every way a byte
/// stream can be wrong maps onto one of these variants. The static pipeline
/// counts apps whose container fails to decode — the paper's "broken APKs"
/// row in Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApkError {
    /// The leading magic bytes did not match the expected format tag.
    BadMagic {
        /// Which format was being parsed (`"SAPK"` or `"SDEX"`).
        expected: &'static str,
        /// The bytes actually found (up to 4).
        found: [u8; 4],
    },
    /// The format version is newer than this parser understands.
    UnsupportedVersion(u16),
    /// The buffer ended before a complete structure could be read.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// The stored Adler-32 checksum does not match the payload.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u32,
        /// Checksum recomputed over the payload.
        computed: u32,
    },
    /// An index (string, type, or method) points outside its table.
    IndexOutOfRange {
        /// Which table the index refers to.
        table: &'static str,
        /// The offending index.
        index: u32,
        /// Number of entries in the table.
        len: u32,
    },
    /// A varint was malformed (too long or non-canonical).
    BadVarint,
    /// A string-pool entry was not valid UTF-8.
    BadUtf8,
    /// An instruction opcode byte was not recognized.
    BadOpcode(u8),
    /// A section tag in the SAPK header was not recognized.
    BadSectionTag(u8),
    /// A section's declared extent falls outside the container.
    SectionOutOfBounds {
        /// Declared byte offset of the section.
        offset: u32,
        /// Declared byte length of the section.
        len: u32,
        /// Total container size.
        total: u32,
    },
    /// A string-pool span's offset or length does not fit the u32 wire
    /// representation. Unreachable for standalone SDEX blobs (their sizes
    /// are bounded by the container), but mmap-backed multi-gigabyte shard
    /// buffers can position a section past 4 GiB — truncating would
    /// silently alias another string, so the decoder refuses instead.
    SpanOverflow {
        /// Byte offset of the span within the backing buffer.
        offset: u64,
        /// Byte length of the span.
        len: u64,
    },
    /// A required section is missing from the container.
    MissingSection(&'static str),
    /// Structural rule violated (e.g., superclass cycle, duplicate class).
    Invalid(&'static str),
    /// The analyzer itself panicked on this container. Produced only by the
    /// static pipeline's fault isolation (`std::panic::catch_unwind`), never
    /// by the parsers in this crate; the app still counts toward Table 2's
    /// broken row instead of aborting the corpus run.
    AnalysisPanic {
        /// The panic payload, rendered to text.
        message: String,
    },
}

impl ApkError {
    /// Short stable label for the failure-taxonomy counters
    /// (`PipelineStats::failure_kinds` in `wla-static`).
    pub fn kind(&self) -> &'static str {
        match self {
            ApkError::BadMagic { .. } => "bad-magic",
            ApkError::UnsupportedVersion(_) => "unsupported-version",
            ApkError::Truncated { .. } => "truncated",
            ApkError::ChecksumMismatch { .. } => "checksum-mismatch",
            ApkError::IndexOutOfRange { .. } => "index-out-of-range",
            ApkError::BadVarint => "bad-varint",
            ApkError::BadUtf8 => "bad-utf8",
            ApkError::BadOpcode(_) => "bad-opcode",
            ApkError::BadSectionTag(_) => "bad-section-tag",
            ApkError::SectionOutOfBounds { .. } => "section-out-of-bounds",
            ApkError::SpanOverflow { .. } => "span-overflow",
            ApkError::MissingSection(_) => "missing-section",
            ApkError::Invalid(_) => "invalid-structure",
            ApkError::AnalysisPanic { .. } => "analysis-panic",
        }
    }
}

impl fmt::Display for ApkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApkError::BadMagic { expected, found } => {
                write!(f, "bad magic: expected {expected:?}, found {found:02x?}")
            }
            ApkError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            ApkError::Truncated { context } => write!(f, "truncated input while reading {context}"),
            ApkError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            ApkError::IndexOutOfRange { table, index, len } => {
                write!(f, "{table} index {index} out of range (table has {len})")
            }
            ApkError::BadVarint => write!(f, "malformed varint"),
            ApkError::BadUtf8 => write!(f, "string-pool entry is not valid UTF-8"),
            ApkError::BadOpcode(op) => write!(f, "unrecognized opcode {op:#04x}"),
            ApkError::BadSectionTag(t) => write!(f, "unrecognized section tag {t:#04x}"),
            ApkError::SectionOutOfBounds { offset, len, total } => write!(
                f,
                "section [{offset}, +{len}) falls outside container of {total} bytes"
            ),
            ApkError::SpanOverflow { offset, len } => write!(
                f,
                "string span [{offset}, +{len}) exceeds the u32 wire representation"
            ),
            ApkError::MissingSection(name) => write!(f, "required section {name} missing"),
            ApkError::Invalid(what) => write!(f, "invalid structure: {what}"),
            ApkError::AnalysisPanic { message } => {
                write!(f, "analyzer panicked: {message}")
            }
        }
    }
}

impl std::error::Error for ApkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ApkError::BadMagic {
            expected: "SDEX",
            found: *b"ZIP\0",
        };
        let s = e.to_string();
        assert!(s.contains("SDEX"));
        assert!(s.contains("bad magic"));
    }

    #[test]
    fn checksum_display_hex() {
        let e = ApkError::ChecksumMismatch {
            stored: 0xdead_beef,
            computed: 0x1234_5678,
        };
        assert!(e.to_string().contains("0xdeadbeef"));
    }

    #[test]
    fn error_trait_object_safe() {
        let e: Box<dyn std::error::Error> = Box::new(ApkError::BadVarint);
        assert_eq!(e.to_string(), "malformed varint");
    }
}
