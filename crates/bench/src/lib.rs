//! # wla-bench — experiment harness
//!
//! One `exp_*` binary per table/figure of the paper, each a thin wrapper
//! over [`wla_core::experiments`], plus Criterion benches for the
//! pipeline's hot paths and the ablations DESIGN.md calls out.
//!
//! Every binary accepts `--scale N` (corpus scale divisor, default 100)
//! and `--seed N`, prints the reproduced artifact, and finishes with a
//! paper-vs-measured comparison table.

use wla_core::experiments::Experiment;
use wla_core::Study;

/// CLI options shared by the experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Corpus scale divisor.
    pub scale: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: 100,
            seed: 0xDA7A_5EED,
        }
    }
}

/// Parse `--scale` / `--seed` from `std::env::args`.
pub fn parse_args() -> Options {
    let mut opts = Options::default();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    opts.scale = v;
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    opts.seed = v;
                    i += 1;
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: exp_* [--scale N] [--seed N]");
                std::process::exit(0);
            }
            _ => {}
        }
        i += 1;
    }
    opts
}

/// Build the study for the parsed options.
pub fn study(opts: Options) -> Study {
    Study::new(opts.scale, opts.seed)
}

/// Print one experiment: its artifact(s), then the comparison.
pub fn print_experiment(exp: &Experiment) {
    println!("=== Experiment {} ===\n", exp.id);
    if !exp.table.headers.is_empty() || !exp.table.rows.is_empty() {
        println!("{}", exp.table.render());
    }
    for figure in &exp.figures {
        println!("{figure}");
    }
    println!("{}", exp.comparison.to_table().render());
    println!(
        "shape agreement: {:.0}% of {} compared metrics within tolerance\n",
        exp.comparison.match_fraction() * 100.0,
        exp.comparison.rows.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options() {
        let o = Options::default();
        assert_eq!(o.scale, 100);
    }

    #[test]
    fn print_does_not_panic_on_empty() {
        let exp = Experiment {
            id: "empty",
            table: wla_core::wla_report::Table::new("t", &[]),
            comparison: wla_core::wla_report::Comparison::new("empty"),
            figures: vec![],
        };
        print_experiment(&exp);
    }
}
