//! Regenerates Table 6 (top-1K hyperlink-click classification).
//! Always full scale: the paper's 1,000 apps are driven through the
//! simulated device.

fn main() {
    let opts = wla_bench::parse_args();
    let study = wla_bench::study(opts);
    let run = study.run_dynamic();
    wla_bench::print_experiment(&wla_core::experiments::table6(&run));
}
