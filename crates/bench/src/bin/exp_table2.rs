//! Regenerates Table 2 (dataset funnel) — full-scale metadata universe
//! plus the scaled byte-level corpus for the analyzed row.

fn main() {
    let opts = wla_bench::parse_args();
    let study = wla_bench::study(opts);
    eprintln!("running static pipeline at scale 1:{} …", study.scale);
    let static_run = study.run_static();
    eprintln!("running 6.5M-record metadata funnel …");
    let funnel = study.run_funnel(&static_run);
    wla_bench::print_experiment(&wla_core::experiments::table2(&study, &funnel));
    // Observability for the run that produced the analyzed row: per-stage
    // timers, throughput, and the failure taxonomy behind "broken".
    println!(
        "{}",
        wla_core::experiments::pipeline_stats_report(&static_run).render()
    );
}
