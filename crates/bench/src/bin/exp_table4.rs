//! Regenerates Table 4 (popular SDKs using WebViews).

fn main() {
    let opts = wla_bench::parse_args();
    let study = wla_bench::study(opts);
    let run = study.run_static();
    wla_bench::print_experiment(&wla_core::experiments::table4(&study, &run));
}
