//! Regenerates Table 5 (popular SDKs using Custom Tabs).

fn main() {
    let opts = wla_bench::parse_args();
    let study = wla_bench::study(opts);
    let run = study.run_static();
    wla_bench::print_experiment(&wla_core::experiments::table5(&study, &run));
}
