//! Methodology ablation: what the two §3.1.3 filters buy.
//!
//! Compares the proper pipeline against (a) a variant that does not
//! exclude deep-link (first-party) activities and (b) a variant that
//! counts every call site without entry-point reachability — quantifying
//! the false positives each filter removes.

use wla_core::wla_report::{thousands, Table};

fn main() {
    let opts = wla_bench::parse_args();
    let study = wla_bench::study(opts);
    eprintln!("running static pipeline at scale 1:{} …", study.scale);
    let run = study.run_static();
    let r = &run.results;

    let mut t = Table::new(
        "Ablation: WebView-app count under weakened pipelines (rescaled)",
        &["Pipeline variant", "Apps using WebViews", "Inflation"],
    );
    let base = r.webview_apps;
    let rows = [
        ("Full pipeline (paper's method)", base),
        (
            "No deep-link (first-party) exclusion",
            r.webview_apps_without_deeplink_exclusion,
        ),
        (
            "No entry-point reachability (whole-graph scan)",
            r.webview_apps_without_reachability,
        ),
    ];
    for (name, n) in rows {
        let inflation = if base > 0 {
            format!("{:+.1}%", (n as f64 / base as f64 - 1.0) * 100.0)
        } else {
            "n/a".into()
        };
        t.row_owned(vec![
            name.to_owned(),
            thousands(study.rescale(n)),
            inflation,
        ]);
    }
    println!("{}", t.render());
    println!(
        "dead-code call sites the traversal discarded: {} (×{} ≈ {})",
        r.unreachable_sites_discarded,
        study.scale,
        thousands(study.rescale(r.unreachable_sites_discarded))
    );
}
