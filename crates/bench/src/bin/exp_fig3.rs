//! Regenerates Figure 3 (SDK use-case distribution per top-10 app
//! category, WebView and CT panels).

fn main() {
    let opts = wla_bench::parse_args();
    let study = wla_bench::study(opts);
    let run = study.run_static();
    wla_bench::print_experiment(&wla_core::experiments::fig3(&study, &run));
}
