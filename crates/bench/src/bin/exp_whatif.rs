//! Recommendation-impact what-if (§5): how the ecosystem's WebView/CT
//! shares move if SDK classes the paper calls out actually migrate to
//! Custom Tabs.
//!
//! Three scenarios on top of the baseline:
//!   1. sensitive flows migrate (Payments + Authentication + Social — the
//!      paper's explicit recommendation);
//!   2. ad SDKs migrate (the future-work direction via Partial CTs);
//!   3. both.

use wla_core::wla_corpus::{CorpusConfig, EcosystemParams, Generator};
use wla_core::wla_report::{percent, Table};
use wla_core::wla_sdk_index::SdkCategory;
use wla_core::wla_static::{aggregate, run_pipeline, CorpusInput, PipelineConfig};

fn run_scenario(study: &wla_core::Study, params: EcosystemParams) -> (f64, f64, f64) {
    let cfg = CorpusConfig {
        scale: study.scale,
        seed: study.seed,
        params,
        ..CorpusConfig::default()
    };
    let inputs: Vec<CorpusInput> = Generator::new(&study.catalog, cfg)
        .generate()
        .into_iter()
        .map(|g| CorpusInput {
            meta: g.spec.meta.clone(),
            bytes: g.bytes,
        })
        .collect();
    let out = run_pipeline(&inputs, &study.catalog, PipelineConfig::default());
    let r = aggregate(&out, &study.catalog, 1);
    let n = r.analyzed as f64;
    (
        r.webview_apps as f64 / n,
        r.ct_apps as f64 / n,
        r.both_apps as f64 / n,
    )
}

fn main() {
    let opts = wla_bench::parse_args();
    let study = wla_bench::study(opts);
    eprintln!("running four scenarios at scale 1:{} …", study.scale);

    let sensitive = [
        SdkCategory::Payments,
        SdkCategory::Authentication,
        SdkCategory::Social,
    ];
    let ads = [SdkCategory::Advertising];
    let everything = [
        SdkCategory::Payments,
        SdkCategory::Authentication,
        SdkCategory::Social,
        SdkCategory::Advertising,
    ];

    let scenarios: Vec<(&str, EcosystemParams)> = vec![
        (
            "Baseline (paper's 2023 ecosystem)",
            EcosystemParams::default(),
        ),
        (
            "Payments+Auth+Social migrate (the paper's recommendation)",
            EcosystemParams::default().simulate_ct_migration(&sensitive, 1.0),
        ),
        (
            "Ad SDKs migrate (Partial-CT future work)",
            EcosystemParams::default().simulate_ct_migration(&ads, 1.0),
        ),
        (
            "Both migrations",
            EcosystemParams::default().simulate_ct_migration(&everything, 1.0),
        ),
    ];

    let mut t = Table::new(
        "What-if: ecosystem shares after CT migrations",
        &["Scenario", "WebView apps", "CT apps", "Both"],
    );
    for (name, params) in scenarios {
        let (wv, ct, both) = run_scenario(&study, params);
        t.row_owned(vec![
            name.to_owned(),
            percent(wv),
            percent(ct),
            percent(both),
        ]);
    }
    println!("{}", t.render());
    println!(
        "baseline reference (paper): WebView 55.7%, CT ~20%, both ~15%.\n\
         WebView share that remains after all migrations is the legitimate\n\
         residue the paper identifies: engagement measurement, dev tools,\n\
         user support, hybrid apps, and first-party content."
    );
}
