//! Regenerates Appendix Figure 7 (page-load time: CT vs Chrome vs external
//! browser vs WebView).

fn main() {
    let _ = wla_bench::parse_args();
    wla_bench::print_experiment(&wla_core::experiments::fig7());
}
