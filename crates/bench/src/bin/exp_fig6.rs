//! Regenerates Figures 6a/6b (distinct endpoints contacted by LinkedIn's
//! and Kik's IABs across the 100-site crawl, baseline-subtracted).

fn main() {
    let opts = wla_bench::parse_args();
    let study = wla_bench::study(opts);
    eprintln!("crawling 100 top sites through LinkedIn and Kik IABs + baseline …");
    let run = study.run_crawl_parallel(
        Some(&["LinkedIn", "Kik"]),
        wla_core::wla_dynamic::CrawlConfig::default(),
    );
    wla_bench::print_experiment(&wla_core::experiments::fig6(&run));
    eprintln!(
        "{}",
        wla_core::experiments::crawl_stats_report(&run).render()
    );
}
