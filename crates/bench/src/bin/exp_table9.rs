//! Regenerates Appendix Table 9 (Web APIs recorded by the controlled
//! page's measurement server).

fn main() {
    let opts = wla_bench::parse_args();
    let study = wla_bench::study(opts);
    let run = study.run_dynamic();
    wla_bench::print_experiment(&wla_core::experiments::table9(&run));
}
