//! Regenerates Figure 4 (heatmap of WebView API method calls by SDK type).

fn main() {
    let opts = wla_bench::parse_args();
    let study = wla_bench::study(opts);
    let run = study.run_static();
    wla_bench::print_experiment(&wla_core::experiments::fig4(&study, &run));
}
