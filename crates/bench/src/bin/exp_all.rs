//! Runs every experiment once and prints a summary — the source of
//! EXPERIMENTS.md's measured column.

use wla_core::experiments as exp;

fn main() {
    let opts = wla_bench::parse_args();
    let study = wla_bench::study(opts);

    eprintln!("[1/4] static pipeline (scale 1:{}) …", study.scale);
    let static_run = study.run_static();
    eprintln!("[2/4] metadata funnel (6.5M records) …");
    let funnel = study.run_funnel(&static_run);
    eprintln!("[3/4] dynamic study (top-1K classification + 10 IABs) …");
    let dynamic_run = study.run_dynamic();
    eprintln!("[4/4] crawl study (100 sites × 10 IABs + baseline) …");
    let crawl_run = study.run_crawl_parallel(None, wla_core::wla_dynamic::CrawlConfig::default());
    eprintln!("{}", exp::crawl_stats_report(&crawl_run).render());

    let experiments = vec![
        exp::table2(&study, &funnel),
        exp::table3(&study, &static_run),
        exp::table4(&study, &static_run),
        exp::table5(&study, &static_run),
        exp::table6(&dynamic_run),
        exp::table7(&study, &static_run),
        exp::table8(&dynamic_run),
        exp::table9(&dynamic_run),
        exp::fig3(&study, &static_run),
        exp::fig4(&study, &static_run),
        exp::fig6(&crawl_run),
        exp::fig7(),
    ];
    for e in &experiments {
        wla_bench::print_experiment(e);
    }

    println!("=== Static pipeline observability ===\n");
    println!("{}", exp::pipeline_stats_report(&static_run).render());

    println!("=== Summary ===");
    for e in &experiments {
        println!(
            "{:8} {:>4.0}% of {:2} metrics within tolerance",
            e.id,
            e.comparison.match_fraction() * 100.0,
            e.comparison.rows.len()
        );
    }
}
