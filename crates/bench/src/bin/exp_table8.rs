//! Regenerates Table 8 (the ten WebView-IAB apps: injections + intents),
//! by instrumenting each IAB on the controlled page over loopback HTTP.

fn main() {
    let opts = wla_bench::parse_args();
    let study = wla_bench::study(opts);
    let run = study.run_dynamic();
    wla_bench::print_experiment(&wla_core::experiments::table8(&run));
}
