//! SimHash cost vs token count, plus the full cloaking-check path on the
//! controlled page (DESIGN.md §6.4).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wla_core::wla_web::script::{execute, ScriptEffect};
use wla_core::wla_web::testpage::test_page;
use wla_core::wla_web::webapi::DomSession;
use wla_core::wla_web::{hamming, simhash64, simhash64_scalar};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("simhash");
    for n in [64usize, 512, 4096] {
        let tokens: Vec<String> = (0..n).map(|i| format!("token{i}")).collect();
        group.bench_with_input(BenchmarkId::new("simhash64", n), &tokens, |b, tokens| {
            b.iter(|| simhash64(tokens.iter().map(String::as_str)))
        });
        // The branchy voting loop the nibble-spread path replaced.
        group.bench_with_input(BenchmarkId::new("scalar", n), &tokens, |b, tokens| {
            b.iter(|| simhash64_scalar(tokens.iter().map(String::as_str)))
        });
    }
    group.bench_function("hamming", |b| {
        b.iter(|| {
            hamming(
                black_box(0xDEAD_BEEF_DEAD_BEEF),
                black_box(0x1234_5678_9ABC_DEF0),
            )
        })
    });
    group.bench_function("simhash_page_effect", |b| {
        b.iter_batched(
            || DomSession::new(test_page()),
            |mut session| execute(&ScriptEffect::SimHashPage, &mut session),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
