//! URL-provenance resolution cost: the intra-procedural constant
//! propagation pass versus the linear pending-string heuristic it
//! replaced (DESIGN.md §6.5), at both the per-graph annotation layer and
//! the end-to-end pipeline (the `use_dataflow` ablation knob behind
//! EXPERIMENTS.md's provenance table).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wla_core::wla_apk::{Dex, Sapk, SectionTag};
use wla_core::wla_callgraph::{provenance_oracle, CallGraph, CallSite};
use wla_core::wla_corpus::{CorpusConfig, Generator};
use wla_core::wla_sdk_index::SdkIndex;
use wla_core::wla_static::{dataflow, run_pipeline, CorpusInput, DataflowCounters, PipelineConfig};

fn corpus(scale: u32) -> Vec<CorpusInput> {
    let catalog = SdkIndex::paper();
    let cfg = CorpusConfig {
        scale,
        seed: 4_242,
        corrupt_fraction: 0.0,
        ..CorpusConfig::default()
    };
    Generator::new(&catalog, cfg)
        .generate()
        .into_iter()
        .map(|g| CorpusInput {
            meta: g.spec.meta.clone(),
            bytes: g.bytes,
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let catalog = SdkIndex::paper();
    let inputs = corpus(100);

    // Pre-decoded dexes with their graphs' site lists, so the annotation
    // benches measure resolution alone (sites are `Copy`, the per-iter
    // clone is a memcpy).
    let fixtures: Vec<(Dex, Vec<CallSite>)> = inputs
        .iter()
        .flat_map(|input| {
            let apk = Sapk::decode(&input.bytes).expect("generated app decodes");
            apk.sections()
                .iter()
                .filter(|s| s.tag == SectionTag::Dex)
                .map(|s| {
                    let dex = Dex::decode_bytes(s.data.clone()).unwrap();
                    let sites = CallGraph::build(&dex).sites().to_vec();
                    (dex, sites)
                })
                .collect::<Vec<_>>()
        })
        .collect();

    let mut group = c.benchmark_group("url_provenance");
    group.sample_size(10);
    // Annotation ablation: worklist constant propagation vs the linear
    // pending-string scan, over identical graphs.
    group.bench_function("annotate_dataflow", |b| {
        let mut counters = DataflowCounters::default();
        b.iter(|| {
            for (dex, sites) in &fixtures {
                let mut sites = sites.clone();
                dataflow::annotate(black_box(dex), &mut sites, &mut counters);
                black_box(&sites);
            }
        })
    });
    group.bench_function("annotate_pending_string", |b| {
        b.iter(|| {
            for (dex, sites) in &fixtures {
                let mut sites = sites.clone();
                provenance_oracle::annotate(black_box(dex), &mut sites);
                black_box(&sites);
            }
        })
    });
    // End-to-end cost of the pass: full pipeline with the knob on vs off.
    for use_dataflow in [true, false] {
        let label = if use_dataflow {
            "pipeline_dataflow"
        } else {
            "pipeline_ablated"
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                run_pipeline(
                    black_box(&inputs),
                    &catalog,
                    PipelineConfig {
                        workers: 4,
                        use_dataflow,
                        ..PipelineConfig::default()
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
