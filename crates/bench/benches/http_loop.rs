//! HTTP serving-stack saturation: the readiness-loop nonblocking server
//! vs the seed thread-per-connection oracle under concurrent load.
//!
//! Every saturation bench drives the same trivial router from `CLIENTS`
//! client threads so the measured cost is the serving stack, not the
//! handler. The grid is the framing strategies the tentpole cares about:
//!
//! * `oracle_close_64`   — seed baseline: one thread + one connection per
//!   request (`Connection: close`), accept → spawn → serve → join;
//! * `nb_close_64`       — nonblocking server, same one-connection-per-
//!   request client pattern (isolates the event loop from keep-alive);
//! * `nb_keepalive_64`   — nonblocking server, one persistent connection
//!   per client, serial request/response exchanges;
//! * `nb_pipelined_64`   — nonblocking server, persistent connections,
//!   requests written back-to-back in pipelined bursts.
//!
//! The legacy measurement-path benches (`beacon_roundtrip`, `page_fetch`)
//! stay for continuity with earlier snapshots. Server-side p50/p99
//! service times for each saturation bench are printed to stderr after
//! the group runs (they ride the `ServerStats` histogram, not criterion).

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use wla_core::wla_net::beacon::encode_beacon;
use wla_core::wla_net::server::oracle;
use wla_core::wla_net::{
    fetch, ClientConn, Handler, MeasurementServer, Request, Response, Server, ServerConfig,
};
use wla_core::wla_web::testpage::test_page_html;

/// Concurrent client threads for the saturation grid.
const CLIENTS: usize = 64;

/// Requests issued per client per iteration. Quick mode keeps the whole
/// group inside the CI budget; full mode saturates long enough for the
/// histogram tails to mean something.
fn requests_per_client() -> usize {
    if std::env::var_os("WLA_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty()) {
        8
    } else {
        32
    }
}

/// The handler every saturation bench serves: a fixed small body, so the
/// measurement is framing + scheduling, not handler work.
fn ping_handler() -> Handler {
    Arc::new(|_req: &Request| Response::ok("text/plain", &b"pong"[..]))
}

/// Run `CLIENTS` threads, each issuing `per_client` requests via `client`.
fn saturate(
    addr: std::net::SocketAddr,
    per_client: usize,
    client: fn(std::net::SocketAddr, usize),
) {
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| std::thread::spawn(move || client(addr, per_client)))
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// One fresh `Connection: close` round trip per request (the seed client).
fn close_client(addr: std::net::SocketAddr, n: usize) {
    for _ in 0..n {
        let resp = fetch(addr, Request::get("/ping")).unwrap();
        assert_eq!(&resp.body[..], b"pong");
    }
}

/// One persistent connection, serial keep-alive exchanges.
fn keepalive_client(addr: std::net::SocketAddr, n: usize) {
    let mut conn = ClientConn::connect(addr).unwrap();
    for _ in 0..n {
        let resp = conn.send(&Request::get("/ping")).unwrap();
        assert_eq!(&resp.body[..], b"pong");
    }
}

/// One persistent connection, all requests written as one pipelined burst.
fn pipelined_client(addr: std::net::SocketAddr, n: usize) {
    let mut conn = ClientConn::connect(addr).unwrap();
    let burst: Vec<Request> = (0..n).map(|_| Request::get("/ping")).collect();
    let responses = conn.send_pipelined(&burst).unwrap();
    assert_eq!(responses.len(), n);
    for resp in &responses {
        assert_eq!(&resp.body[..], b"pong");
    }
}

fn bench(c: &mut Criterion) {
    let per_client = requests_per_client();

    let measurement = MeasurementServer::start(test_page_html()).unwrap();
    let measurement_addr = measurement.addr();

    let mut group = c.benchmark_group("http_loop");
    group.sample_size(30);

    // Legacy measurement-path round trips (single client, close framing).
    group.bench_function("beacon_roundtrip", |b| {
        b.iter(|| {
            let body = encode_beacon("Document", "getElementById", Some("x"), "bench");
            fetch(
                measurement_addr,
                Request::post("/beacon", body.into_bytes()),
            )
            .unwrap()
        })
    });
    group.bench_function("page_fetch", |b| {
        b.iter(|| fetch(measurement_addr, Request::get("/page")).unwrap())
    });

    group.sample_size(10);

    // Seed baseline: thread-per-connection oracle, close framing.
    let mut oracle_server = oracle::Server::start(ping_handler()).unwrap();
    let oracle_addr = oracle_server.addr();
    group.bench_function("oracle_close_64", |b| {
        b.iter(|| saturate(oracle_addr, per_client, close_client))
    });

    // The nonblocking server serves the remaining three shapes. One event
    // loop per available core: extra shards only add context switching.
    let shards = std::thread::available_parallelism().map_or(1, |n| n.get());
    let nb_server = Server::start_with(
        ping_handler(),
        ServerConfig {
            event_loops: shards,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let nb_addr = nb_server.addr();
    group.bench_function("nb_close_64", |b| {
        b.iter(|| saturate(nb_addr, per_client, close_client))
    });
    group.bench_function("nb_keepalive_64", |b| {
        b.iter(|| saturate(nb_addr, per_client, keepalive_client))
    });
    group.bench_function("nb_pipelined_64", |b| {
        b.iter(|| saturate(nb_addr, per_client, pipelined_client))
    });
    group.finish();

    let snap = nb_server.stats().snapshot();
    eprintln!(
        "nonblocking server: {} conns, {} requests ({} keep-alive), \
         service p50 {:.1} us, p99 {:.1} us",
        snap.accepted, snap.requests, snap.keepalive_requests, snap.p50_us, snap.p99_us
    );

    oracle_server.shutdown();
    drop(measurement);
}

criterion_group!(benches, bench);
criterion_main!(benches);
