//! Loopback measurement-path cost: beacon round trip and controlled-page
//! fetch over real TCP.

use criterion::{criterion_group, criterion_main, Criterion};
use wla_core::wla_net::beacon::encode_beacon;
use wla_core::wla_net::{fetch, MeasurementServer, Request};
use wla_core::wla_web::testpage::test_page_html;

fn bench(c: &mut Criterion) {
    let server = MeasurementServer::start(test_page_html()).unwrap();
    let addr = server.addr();

    let mut group = c.benchmark_group("http_loop");
    group.sample_size(30);
    group.bench_function("beacon_roundtrip", |b| {
        b.iter(|| {
            let body = encode_beacon("Document", "getElementById", Some("x"), "bench");
            fetch(addr, Request::post("/beacon", body.into_bytes())).unwrap()
        })
    });
    group.bench_function("page_fetch", |b| {
        b.iter(|| fetch(addr, Request::get("/page")).unwrap())
    });
    group.finish();
    drop(server);
}

criterion_group!(benches, bench);
criterion_main!(benches);
