//! Crawl-study cost: the seed string-path oracle vs the interned pipeline,
//! serial and at increasing worker counts.
//!
//! `serial_seed` is the pre-pipeline shape — per-visit page regeneration
//! and re-parse, owned-`String` host sets, string-keyed figure fold — and
//! doubles as the interned-vs-string ablation baseline. `serial_interned`
//! is the pipeline at one worker (prepared pages, symbol-keyed hosts,
//! classification memo); `parallel_N` adds the claim-based pool on top.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wla_core::wla_crawler::driver::{crawl_app, crawl_baseline, figure6};
use wla_core::wla_crawler::sites::top_100_sites;
use wla_core::wla_device::iab::all_profiles;
use wla_core::wla_dynamic::{run_crawl_pipeline, CrawlConfig};

const APPS: &[&str] = &["LinkedIn", "Kik", "Snapchat"];

fn bench(c: &mut Criterion) {
    let sites = top_100_sites();
    let profiles = all_profiles();

    let mut group = c.benchmark_group("crawl_study");
    group.sample_size(20);

    // The seed path: fresh synthetic source per visit, BTreeSet<String>
    // hosts, figures folded from the string records.
    group.bench_function("serial_seed", |b| {
        b.iter(|| {
            let baseline = crawl_baseline(&sites);
            let mut figures = Vec::new();
            for profile in profiles.iter().filter(|p| APPS.contains(&p.app_name)) {
                let records = crawl_app(profile, &sites);
                figures.push(figure6(&records, &baseline));
            }
            figures
        })
    });

    group.bench_function("serial_interned", |b| {
        b.iter(|| {
            run_crawl_pipeline(
                &sites,
                Some(APPS),
                CrawlConfig {
                    workers: 1,
                    ..CrawlConfig::default()
                },
            )
        })
    });

    for workers in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    run_crawl_pipeline(
                        &sites,
                        Some(APPS),
                        CrawlConfig {
                            workers,
                            ..CrawlConfig::default()
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
