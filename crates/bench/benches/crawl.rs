//! Per-site crawl visit cost through a heavyweight IAB (Kik) and the
//! baseline shell.

use criterion::{criterion_group, criterion_main, Criterion};
use wla_core::wla_crawler::driver::{crawl_app, crawl_baseline};
use wla_core::wla_crawler::sites::top_100_sites;
use wla_core::wla_device::iab::profile_for;

fn bench(c: &mut Criterion) {
    let sites: Vec<_> = top_100_sites().into_iter().take(10).collect();
    let kik = profile_for("kik.android").unwrap();

    let mut group = c.benchmark_group("crawl");
    group.sample_size(20);
    group.bench_function("kik_10_sites", |b| b.iter(|| crawl_app(&kik, &sites)));
    group.bench_function("baseline_10_sites", |b| b.iter(|| crawl_baseline(&sites)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
