//! SDEX/SAPK encode + decode throughput (per-container codec cost).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wla_core::wla_apk::{Dex, Sapk};
use wla_core::wla_corpus::ecosystem::{Ecosystem, EcosystemParams};
use wla_core::wla_corpus::lowering::lower;
use wla_core::wla_corpus::playstore::{AppMeta, PlayCategory};
use wla_core::wla_sdk_index::SdkIndex;

fn representative_container() -> Vec<u8> {
    let catalog = SdkIndex::paper();
    let eco = Ecosystem::new(&catalog, EcosystemParams::default());
    let mut rng = StdRng::seed_from_u64(42);
    let meta = AppMeta {
        package: "com.bench.app".into(),
        on_play_store: true,
        downloads: 5_000_000,
        category: PlayCategory::Tools,
        last_update_day: 900,
    };
    let spec = eco.sample_app(&mut rng, meta);
    lower(&spec, &catalog, &mut rng).encode().to_vec()
}

fn bench(c: &mut Criterion) {
    let bytes = representative_container();
    let apk = Sapk::decode(&bytes).unwrap();
    let dex_bytes = apk.dex_bytes().unwrap().to_vec();
    let dex = Dex::decode(&dex_bytes).unwrap();

    let mut group = c.benchmark_group("apk_codec");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("sapk_decode", |b| {
        b.iter(|| Sapk::decode(black_box(&bytes)).unwrap())
    });
    group.bench_function("sdex_decode", |b| {
        b.iter(|| Dex::decode(black_box(&dex_bytes)).unwrap())
    });
    group.bench_function("sdex_encode", |b| b.iter(|| black_box(&dex).encode()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
