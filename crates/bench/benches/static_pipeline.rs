//! End-to-end static pipeline cost: per-APK analysis, corpus throughput
//! at several worker counts (parallel-width ablation, DESIGN.md §6.3),
//! the overhead of `PipelineStats` stage-timer collection — the
//! acceptance bar is <5% versus timers off — and the interned-vs-string
//! aggregation ablation (DESIGN.md §6, EXPERIMENTS.md).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wla_core::wla_apk::sdex::oracle;
use wla_core::wla_apk::{Dex, Sapk, SectionTag, VerifyPreset};
use wla_core::wla_corpus::{CorpusConfig, Generator};
use wla_core::wla_sdk_index::SdkIndex;
use wla_core::wla_static::{
    aggregate, aggregate_string_oracle, analyze_app_timed_with, run_pipeline, AnalysisCtx,
    CorpusInput, PipelineConfig,
};

fn corpus(n_apps_scale: u32) -> Vec<CorpusInput> {
    let catalog = SdkIndex::paper();
    let cfg = CorpusConfig {
        scale: n_apps_scale,
        seed: 77,
        corrupt_fraction: 0.0,
        ..CorpusConfig::default()
    };
    Generator::new(&catalog, cfg)
        .generate()
        .into_iter()
        .map(|g| CorpusInput {
            meta: g.spec.meta.clone(),
            bytes: g.bytes,
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let catalog = SdkIndex::paper();
    let single = corpus(2_000);
    // ~734 apps: enough work per thread for the fan-out sweep to mean
    // something (73 apps amortize to thread-pool overhead).
    let inputs = corpus(200);

    let mut group = c.benchmark_group("static_pipeline");
    group.sample_size(10);
    group.bench_function("analyze_single_apk", |b| {
        let input = &single[0];
        // Reuse one worker context across iterations, as the pipeline does
        // — re-building the catalog/lexicon per app is not the steady state.
        let mut ctx = AnalysisCtx::new(&catalog);
        b.iter(|| {
            analyze_app_timed_with(input.meta.clone(), black_box(&input.bytes), &mut ctx)
                .0
                .unwrap()
        })
    });
    // Worker-count sweep, with and without stage-timer collection, so the
    // sweep doubles as the stats-overhead ablation at every width.
    for stage_timings in [true, false] {
        let label = if stage_timings {
            "corpus_734_apps_stats_on"
        } else {
            "corpus_734_apps_stats_off"
        };
        for workers in [1usize, 2, 4, 8] {
            group.bench_with_input(BenchmarkId::new(label, workers), &workers, |b, &workers| {
                b.iter(|| {
                    run_pipeline(
                        black_box(&inputs),
                        &catalog,
                        PipelineConfig {
                            workers,
                            stage_timings,
                            ..PipelineConfig::default()
                        },
                    )
                })
            });
        }
    }
    // Batch-claiming ablation at fixed width: per-index claiming (batch=1)
    // versus the auto-sized batches the scheduler picks by default.
    for batch in [1usize, 0] {
        let label = if batch == 1 {
            "claim_per_index"
        } else {
            "claim_auto_batch"
        };
        group.bench_with_input(BenchmarkId::new(label, 8), &batch, |b, &batch| {
            b.iter(|| {
                run_pipeline(
                    black_box(&inputs),
                    &catalog,
                    PipelineConfig {
                        workers: 8,
                        batch,
                        ..PipelineConfig::default()
                    },
                )
            })
        });
    }
    // Decode ablation: the zero-copy span-pool decoder versus the owning
    // per-entry-String oracle, over every dex blob of the same corpus.
    // The blobs are `Bytes` sections of their containers, so the zero-copy
    // path measures its real shape: refcount bump in, spans out.
    let dex_blobs: Vec<_> = inputs
        .iter()
        .flat_map(|input| {
            let apk = Sapk::decode(&input.bytes).expect("generated app decodes");
            apk.sections()
                .iter()
                .filter(|s| s.tag == SectionTag::Dex)
                .map(|s| s.data.clone())
                .collect::<Vec<_>>()
        })
        .collect();
    group.bench_function("decode_zero_copy", |b| {
        b.iter(|| {
            for blob in &dex_blobs {
                black_box(Dex::decode_bytes(black_box(blob.clone())).unwrap());
            }
        })
    });
    group.bench_function("decode_owned_oracle", |b| {
        b.iter(|| {
            for blob in &dex_blobs {
                black_box(oracle::decode(black_box(blob)).unwrap());
            }
        })
    });
    // Verify-preset ablation (DESIGN.md §6.9): the same zero-copy decode
    // with per-string UTF-8 + structural re-validation skipped
    // (checksum-only) and with the checksum skipped too (trusted). The
    // trusted row is the ISSUE's ≥1.5x bar against `decode_zero_copy`.
    group.bench_function("decode_checksum_only", |b| {
        b.iter(|| {
            for blob in &dex_blobs {
                black_box(
                    Dex::decode_bytes_with(black_box(blob.clone()), VerifyPreset::ChecksumOnly)
                        .unwrap(),
                );
            }
        })
    });
    group.bench_function("decode_trusted", |b| {
        b.iter(|| {
            for blob in &dex_blobs {
                black_box(
                    Dex::decode_bytes_with(black_box(blob.clone()), VerifyPreset::None).unwrap(),
                );
            }
        })
    });
    // Interned-IR ablation: the shipping u32-keyed aggregation versus the
    // string-path oracle (resolve + string-compare + trie re-label per
    // site) over the identical pipeline output.
    let out = run_pipeline(&inputs, &catalog, PipelineConfig::default());
    group.bench_function("aggregate_interned", |b| {
        b.iter(|| aggregate(black_box(&out), &catalog, 1))
    });
    group.bench_function("aggregate_string_oracle", |b| {
        b.iter(|| aggregate_string_oracle(black_box(&out), &catalog, 1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
