//! Sharded-corpus streaming cost (DESIGN.md §6.6): the mmap-backed
//! shard-streaming path versus buffered reads versus the in-memory
//! pipeline over the same apps, plus the resume-manifest fast path and
//! the shard-write cost itself. All runs use the same 734-app corpus and
//! 8 workers as `static_pipeline`'s corpus sweep, so the groups are
//! directly comparable.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use wla_core::wla_apk::VerifyPreset;
use wla_core::wla_corpus::{write_sharded_corpus, CorpusConfig, GeneratedApp, Generator};
use wla_core::wla_sdk_index::SdkIndex;
use wla_core::wla_static::{
    run_pipeline, run_pipeline_streamed, CorpusInput, PipelineConfig, StreamConfig, MANIFEST_SUBDIR,
};

fn corpus(scale: u32) -> Vec<GeneratedApp> {
    let catalog = SdkIndex::paper();
    let cfg = CorpusConfig {
        scale,
        seed: 77,
        corrupt_fraction: 0.0,
        ..CorpusConfig::default()
    };
    Generator::new(&catalog, cfg).generate()
}

fn shard_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wla-bench-stream-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stream_config(mmap: bool, resume: bool) -> StreamConfig {
    StreamConfig {
        pipeline: PipelineConfig {
            workers: 8,
            ..PipelineConfig::default()
        },
        mmap,
        resume,
    }
}

fn bench(c: &mut Criterion) {
    let catalog = SdkIndex::paper();
    // ~734 apps, matching static_pipeline's corpus sweep.
    let apps = corpus(200);
    let inputs: Vec<CorpusInput> = apps
        .iter()
        .map(|g| CorpusInput {
            meta: g.spec.meta.clone(),
            bytes: g.bytes.clone(),
        })
        .collect();

    let mut group = c.benchmark_group("corpus_stream");
    group.sample_size(10);

    group.bench_function("shard_write_734", |b| {
        let dir = shard_dir("write");
        b.iter(|| write_sharded_corpus(black_box(&dir), black_box(&apps), 64).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    });

    let dir = shard_dir("read");
    write_sharded_corpus(&dir, &apps, 64).unwrap();

    group.bench_function("stream_mmap_734", |b| {
        b.iter(|| run_pipeline_streamed(black_box(&dir), &catalog, stream_config(true, false)))
    });
    // Trusted-corpus fast path (DESIGN.md §6.9): the same mmap stream with
    // decode re-validation skipped — sound here because this corpus is
    // written with `corrupt_fraction: 0.0` and the shard open just
    // revalidated the file-level checksum.
    group.bench_function("stream_mmap_trusted_734", |b| {
        let mut config = stream_config(true, false);
        config.pipeline.verify_preset = VerifyPreset::None;
        b.iter(|| run_pipeline_streamed(black_box(&dir), &catalog, config))
    });
    group.bench_function("stream_buffered_734", |b| {
        b.iter(|| run_pipeline_streamed(black_box(&dir), &catalog, stream_config(false, false)))
    });
    group.bench_function("in_memory_734", |b| {
        b.iter(|| {
            run_pipeline(
                black_box(&inputs),
                &catalog,
                PipelineConfig {
                    workers: 8,
                    ..PipelineConfig::default()
                },
            )
        })
    });

    // Resume fast path: warm the manifest once, then every iteration is
    // served entirely from per-shard result caches.
    run_pipeline_streamed(&dir, &catalog, stream_config(true, true)).unwrap();
    group.bench_function("stream_resume_cached_734", |b| {
        b.iter(|| {
            let out = run_pipeline_streamed(black_box(&dir), &catalog, stream_config(true, true))
                .unwrap();
            assert_eq!(out.stats.stream.shards_read, 0);
            out
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(dir.join(MANIFEST_SUBDIR));

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
