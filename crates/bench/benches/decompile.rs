//! Decompiler (lifter) + source parser + subclass closure cost per app.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wla_core::wla_apk::Dex;
use wla_core::wla_corpus::ecosystem::{Ecosystem, EcosystemParams};
use wla_core::wla_corpus::lowering::lower;
use wla_core::wla_corpus::playstore::{AppMeta, PlayCategory};
use wla_core::wla_decompile::{
    lift_dex, parse_source, webview_subclasses, webview_subclasses_interned,
};
use wla_core::wla_intern::LocalInterner;
use wla_core::wla_sdk_index::SdkIndex;

fn representative_dex() -> Dex {
    let catalog = SdkIndex::paper();
    let eco = Ecosystem::new(&catalog, EcosystemParams::default());
    let mut rng = StdRng::seed_from_u64(7);
    let meta = AppMeta {
        package: "com.bench.app".into(),
        on_play_store: true,
        downloads: 5_000_000,
        category: PlayCategory::Puzzle,
        last_update_day: 900,
    };
    let spec = eco.sample_app(&mut rng, meta);
    let apk = lower(&spec, &catalog, &mut rng);
    Dex::decode(apk.dex_bytes().unwrap()).unwrap()
}

fn bench(c: &mut Criterion) {
    let dex = representative_dex();
    let sources = lift_dex(&dex);

    let mut group = c.benchmark_group("decompile");
    group.bench_function("lift_dex", |b| b.iter(|| lift_dex(black_box(&dex))));
    group.bench_function("parse_all_sources", |b| {
        b.iter(|| {
            for f in &sources {
                let _ = parse_source(black_box(&f.source));
            }
        })
    });
    group.bench_function("webview_subclasses", |b| {
        b.iter(|| webview_subclasses(black_box(&sources)))
    });
    // Interned closure with a warm worker lexicon — the pipeline's shape.
    group.bench_function("webview_subclasses_interned", |b| {
        let mut lexicon = LocalInterner::new();
        b.iter(|| webview_subclasses_interned(black_box(&sources), &mut lexicon))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
