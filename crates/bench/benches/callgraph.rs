//! Call-graph construction and traversal; ablations: CSR + bitset vs the
//! hash-based oracle path (DESIGN.md §6.3), and entry-point-bounded
//! traversal vs whole-graph site scan (DESIGN.md §6.2).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wla_core::wla_apk::sdex::{ClassFlags, DexBuilder, Instruction, InvokeKind, MethodDef, Reg};
use wla_core::wla_apk::{Dex, TypeId};
use wla_core::wla_callgraph::oracle::{
    reachable_methods_oracle, record_web_calls_oracle, HashCallGraph,
};
use wla_core::wla_callgraph::reach::{
    reachable_methods, record_web_calls, record_web_calls_with, ReachScratch,
};
use wla_core::wla_callgraph::scc::strongly_connected_components;
use wla_core::wla_callgraph::{entry_points, CallGraph};
use wla_core::wla_corpus::ecosystem::{Ecosystem, EcosystemParams};
use wla_core::wla_corpus::lowering::lower;
use wla_core::wla_corpus::playstore::{AppMeta, PlayCategory};
use wla_core::wla_intern::{LocalInterner, Symbol};
use wla_core::wla_manifest::{wireformat, Manifest};
use wla_core::wla_sdk_index::{LabelCache, SdkIndex};

fn fixture() -> (Dex, Manifest) {
    // A heavyweight app: scan seeds for the spec with the most SDKs so the
    // graph has realistic size (a mediation-stack app, not a toy).
    let catalog = SdkIndex::paper();
    let eco = Ecosystem::new(&catalog, EcosystemParams::default());
    let meta = AppMeta {
        package: "com.bench.app".into(),
        on_play_store: true,
        downloads: 50_000_000,
        category: PlayCategory::News,
        last_update_day: 900,
    };
    let spec = (0..200u64)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            eco.sample_app(&mut rng, meta.clone())
        })
        .max_by_key(|s| s.sdks.len())
        .expect("non-empty seed range");
    let mut rng = StdRng::seed_from_u64(1);
    let apk = lower(&spec, &catalog, &mut rng);
    let manifest = wireformat::decode(apk.manifest_bytes().unwrap()).unwrap();
    let dex = Dex::decode(apk.dex_bytes().unwrap()).unwrap();
    (dex, manifest)
}

/// A hierarchy-heavy dex for the vtable-binding ablation: `DEPTH` classes
/// in one superclass chain, `PER_CLASS` methods each, plus a driver whose
/// virtual invokes all name the *deepest* class as receiver while the
/// definitions live in ancestors. Every one of those sites misses the
/// direct signature map and resolves through the flattened vtable — a
/// 256-entry table probed 744 times — so the layout choice dominates.
fn deep_hierarchy_dex() -> Dex {
    const DEPTH: usize = 32;
    const PER_CLASS: usize = 8;
    let mut b = DexBuilder::new();
    for d in 0..DEPTH {
        let name = format!("com/deep/C{d}");
        let superclass = (d > 0).then(|| format!("com/deep/C{}", d - 1));
        let methods = (0..PER_CLASS)
            .map(|m| {
                MethodDef::new(
                    b.intern_method(&name, &format!("m{d}_{m}"), "()V"),
                    true,
                    false,
                    vec![Instruction::ReturnVoid],
                )
            })
            .collect();
        b.define_class(&name, superclass.as_deref(), ClassFlags::default(), methods)
            .unwrap();
    }
    let deepest = format!("com/deep/C{}", DEPTH - 1);
    let mut code = Vec::new();
    for _pass in 0..3 {
        for d in 0..DEPTH - 1 {
            for m in 0..PER_CLASS {
                code.push(Instruction::Invoke {
                    kind: InvokeKind::Virtual,
                    method: b.intern_method(&deepest, &format!("m{d}_{m}"), "()V"),
                    args: vec![Reg(0)],
                });
            }
        }
    }
    let main = vec![MethodDef::new(
        b.intern_method("com/deep/Main", "run", "()V"),
        true,
        false,
        code,
    )];
    b.define_class("com/deep/Main", None, ClassFlags::default(), main)
        .unwrap();
    b.build()
}

fn bench(c: &mut Criterion) {
    let catalog = SdkIndex::paper();
    let (dex, manifest) = fixture();
    let graph = CallGraph::build(&dex);
    let oracle = HashCallGraph::build(&dex);
    let roots = entry_points(&graph, &manifest);
    let subs: std::collections::HashSet<Symbol> = std::collections::HashSet::new();

    let mut group = c.benchmark_group("callgraph");
    // Build ablation: two-pass CSR (dense indices, vtable cache, dedup) vs
    // the single-pass HashMap adjacency build.
    group.bench_function("build", |b| b.iter(|| CallGraph::build(black_box(&dex))));
    group.bench_function("build_hash_oracle", |b| {
        b.iter(|| HashCallGraph::build(black_box(&dex)))
    });
    // Vtable-binding ablation (DESIGN.md §6.9): the default open-addressing
    // per-class vtables versus the sorted-array + binary-search layout the
    // `use_lut = false` pipeline knob falls back to.
    group.bench_function("build_sorted_vtables", |b| {
        b.iter(|| CallGraph::build_with(black_box(&dex), false))
    });
    // The same layout ablation on the hierarchy-heavy fixture, where
    // virtual binding is the dominant cost instead of a rounding error —
    // this pair is the ISSUE's hash-beats-binary-search criterion.
    let deep = deep_hierarchy_dex();
    group.bench_function("vtable_bind_hash", |b| {
        b.iter(|| CallGraph::build_with(black_box(&deep), true))
    });
    group.bench_function("vtable_bind_binary_search", |b| {
        b.iter(|| CallGraph::build_with(black_box(&deep), false))
    });
    // Name-lookup ablation: O(1) probes into the stored wire lookup table
    // versus a linear scan of the type table — the pre-v3 shape every
    // `class_by_name` caller paid per lookup.
    let class_names: Vec<String> = dex
        .classes()
        .iter()
        .map(|c| dex.type_name(c.ty).to_string())
        .chain((0..64).map(|i| format!("com/miss/Absent{i}")))
        .collect();
    group.bench_function("type_by_name_lut", |b| {
        assert!(dex.has_lookup_table());
        b.iter(|| {
            for name in &class_names {
                black_box(dex.type_by_name(black_box(name)));
            }
        })
    });
    group.bench_function("type_by_name_linear_scan", |b| {
        b.iter(|| {
            for name in &class_names {
                black_box(
                    (0..dex.type_count() as u32)
                        .map(TypeId)
                        .find(|&t| dex.type_name(t) == name.as_str()),
                );
            }
        })
    });
    group.bench_function("entry_points", |b| {
        b.iter(|| entry_points(black_box(&graph), black_box(&manifest)))
    });
    // Reachability ablation (the ISSUE's ≥2x criterion): reused bitset +
    // worklist over the CSR arena vs HashSet BFS over HashMap adjacency.
    // The scratch persists across iterations like a pipeline worker's.
    group.bench_function("reachability_bitset", |b| {
        let mut scratch = ReachScratch::new();
        b.iter(|| {
            scratch.mark_reachable(black_box(&graph), black_box(&roots));
        })
    });
    group.bench_function("reachability_hash_oracle", |b| {
        b.iter(|| reachable_methods_oracle(black_box(&oracle), black_box(&roots)))
    });
    // Set-materializing variant (allocates the HashSet): what callers of
    // the compat wrapper pay.
    group.bench_function("reachability_set", |b| {
        b.iter(|| reachable_methods(black_box(&graph), black_box(&roots)))
    });
    // Ablation: traversal-bounded recording vs scanning every site, plus
    // the end-to-end record against the hash oracle. The lexicon and label
    // cache persist across iterations like a pipeline worker's do across
    // apps.
    group.bench_function("record_entrypoint_bounded", |b| {
        let mut lexicon = LocalInterner::new();
        let mut labels = LabelCache::default();
        let mut scratch = ReachScratch::new();
        b.iter(|| {
            record_web_calls_with(
                black_box(&graph),
                black_box(&roots),
                &subs,
                &catalog,
                &mut lexicon,
                &mut labels,
                &mut scratch,
            )
        })
    });
    group.bench_function("record_hash_oracle", |b| {
        let mut lexicon = LocalInterner::new();
        let mut labels = LabelCache::default();
        b.iter(|| {
            record_web_calls_oracle(
                black_box(&oracle),
                black_box(&roots),
                &subs,
                &catalog,
                &mut lexicon,
                &mut labels,
            )
        })
    });
    group.bench_function("scc_tarjan", |b| {
        b.iter(|| strongly_connected_components(black_box(&graph)))
    });
    group.bench_function("record_whole_graph_scan", |b| {
        let mut lexicon = LocalInterner::new();
        let mut labels = LabelCache::default();
        b.iter(|| {
            // Whole-graph scan: treat every defined method as a root.
            let all_roots: Vec<_> = dex
                .classes()
                .iter()
                .flat_map(|c| c.methods.iter().map(|m| m.method))
                .collect();
            record_web_calls(
                black_box(&graph),
                &all_roots,
                &subs,
                &catalog,
                &mut lexicon,
                &mut labels,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
