//! Call-graph construction and traversal; ablations: CSR + bitset vs the
//! hash-based oracle path (DESIGN.md §6.3), and entry-point-bounded
//! traversal vs whole-graph site scan (DESIGN.md §6.2).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wla_core::wla_apk::Dex;
use wla_core::wla_callgraph::oracle::{
    reachable_methods_oracle, record_web_calls_oracle, HashCallGraph,
};
use wla_core::wla_callgraph::reach::{
    reachable_methods, record_web_calls, record_web_calls_with, ReachScratch,
};
use wla_core::wla_callgraph::scc::strongly_connected_components;
use wla_core::wla_callgraph::{entry_points, CallGraph};
use wla_core::wla_corpus::ecosystem::{Ecosystem, EcosystemParams};
use wla_core::wla_corpus::lowering::lower;
use wla_core::wla_corpus::playstore::{AppMeta, PlayCategory};
use wla_core::wla_intern::{LocalInterner, Symbol};
use wla_core::wla_manifest::{wireformat, Manifest};
use wla_core::wla_sdk_index::{LabelCache, SdkIndex};

fn fixture() -> (Dex, Manifest) {
    // A heavyweight app: scan seeds for the spec with the most SDKs so the
    // graph has realistic size (a mediation-stack app, not a toy).
    let catalog = SdkIndex::paper();
    let eco = Ecosystem::new(&catalog, EcosystemParams::default());
    let meta = AppMeta {
        package: "com.bench.app".into(),
        on_play_store: true,
        downloads: 50_000_000,
        category: PlayCategory::News,
        last_update_day: 900,
    };
    let spec = (0..200u64)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            eco.sample_app(&mut rng, meta.clone())
        })
        .max_by_key(|s| s.sdks.len())
        .expect("non-empty seed range");
    let mut rng = StdRng::seed_from_u64(1);
    let apk = lower(&spec, &catalog, &mut rng);
    let manifest = wireformat::decode(apk.manifest_bytes().unwrap()).unwrap();
    let dex = Dex::decode(apk.dex_bytes().unwrap()).unwrap();
    (dex, manifest)
}

fn bench(c: &mut Criterion) {
    let catalog = SdkIndex::paper();
    let (dex, manifest) = fixture();
    let graph = CallGraph::build(&dex);
    let oracle = HashCallGraph::build(&dex);
    let roots = entry_points(&graph, &manifest);
    let subs: std::collections::HashSet<Symbol> = std::collections::HashSet::new();

    let mut group = c.benchmark_group("callgraph");
    // Build ablation: two-pass CSR (dense indices, vtable cache, dedup) vs
    // the single-pass HashMap adjacency build.
    group.bench_function("build", |b| b.iter(|| CallGraph::build(black_box(&dex))));
    group.bench_function("build_hash_oracle", |b| {
        b.iter(|| HashCallGraph::build(black_box(&dex)))
    });
    group.bench_function("entry_points", |b| {
        b.iter(|| entry_points(black_box(&graph), black_box(&manifest)))
    });
    // Reachability ablation (the ISSUE's ≥2x criterion): reused bitset +
    // worklist over the CSR arena vs HashSet BFS over HashMap adjacency.
    // The scratch persists across iterations like a pipeline worker's.
    group.bench_function("reachability_bitset", |b| {
        let mut scratch = ReachScratch::new();
        b.iter(|| {
            scratch.mark_reachable(black_box(&graph), black_box(&roots));
        })
    });
    group.bench_function("reachability_hash_oracle", |b| {
        b.iter(|| reachable_methods_oracle(black_box(&oracle), black_box(&roots)))
    });
    // Set-materializing variant (allocates the HashSet): what callers of
    // the compat wrapper pay.
    group.bench_function("reachability_set", |b| {
        b.iter(|| reachable_methods(black_box(&graph), black_box(&roots)))
    });
    // Ablation: traversal-bounded recording vs scanning every site, plus
    // the end-to-end record against the hash oracle. The lexicon and label
    // cache persist across iterations like a pipeline worker's do across
    // apps.
    group.bench_function("record_entrypoint_bounded", |b| {
        let mut lexicon = LocalInterner::new();
        let mut labels = LabelCache::default();
        let mut scratch = ReachScratch::new();
        b.iter(|| {
            record_web_calls_with(
                black_box(&graph),
                black_box(&roots),
                &subs,
                &catalog,
                &mut lexicon,
                &mut labels,
                &mut scratch,
            )
        })
    });
    group.bench_function("record_hash_oracle", |b| {
        let mut lexicon = LocalInterner::new();
        let mut labels = LabelCache::default();
        b.iter(|| {
            record_web_calls_oracle(
                black_box(&oracle),
                black_box(&roots),
                &subs,
                &catalog,
                &mut lexicon,
                &mut labels,
            )
        })
    });
    group.bench_function("scc_tarjan", |b| {
        b.iter(|| strongly_connected_components(black_box(&graph)))
    });
    group.bench_function("record_whole_graph_scan", |b| {
        let mut lexicon = LocalInterner::new();
        let mut labels = LabelCache::default();
        b.iter(|| {
            // Whole-graph scan: treat every defined method as a root.
            let all_roots: Vec<_> = dex
                .classes()
                .iter()
                .flat_map(|c| c.methods.iter().map(|m| m.method))
                .collect();
            record_web_calls(
                black_box(&graph),
                &all_roots,
                &subs,
                &catalog,
                &mut lexicon,
                &mut labels,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
