//! SDK labeling ablation: prefix trie vs linear scan (DESIGN.md §6.1).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wla_core::wla_sdk_index::SdkIndex;

fn probes() -> Vec<String> {
    let index = SdkIndex::paper();
    let mut probes: Vec<String> = index
        .sdks()
        .iter()
        .map(|s| format!("{}.internal.render", s.primary_prefix()))
        .collect();
    for i in 0..60 {
        probes.push(format!("com.vendor{i:03}.app.ui")); // unlabeled
    }
    probes.push("com.google.android.gms.ads".into());
    probes
}

fn bench(c: &mut Criterion) {
    let index = SdkIndex::paper();
    let probes = probes();

    let mut group = c.benchmark_group("sdk_labeling");
    group.bench_function("trie", |b| {
        b.iter(|| {
            for p in &probes {
                black_box(index.label(p));
            }
        })
    });
    group.bench_function("linear_scan", |b| {
        b.iter(|| {
            for p in &probes {
                black_box(index.label_linear(p));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
