//! HTML parser subset.
//!
//! Handles what the controlled page and the synthetic top-site pages
//! contain: nested elements, attributes (quoted and bare), text, void
//! elements, comments, and raw-text `<script>`/`<style>` bodies. Unknown
//! constructs degrade gracefully (skipped, never panic) — parsing arbitrary
//! byte noise is covered by property tests.

use crate::dom::{Document, NodeId};

/// Elements that never have children.
const VOID_ELEMENTS: [&str; 8] = ["img", "br", "hr", "input", "meta", "link", "source", "area"];

/// Parse `html` into a [`Document`]. Top-level content is placed under
/// `<body>` unless the input carries its own `html/head/body` skeleton, in
/// which case head/body children are merged into the skeleton.
pub fn parse(html: &str) -> Document {
    let mut doc = Document::new();
    let body = doc.body().expect("skeleton");
    let mut parser = Parser {
        src: html.as_bytes(),
        pos: 0,
    };
    let head = doc.head().expect("skeleton");
    parser.parse_children(&mut doc, body, head, None);
    doc
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn eof(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn rest(&self) -> &'a [u8] {
        &self.src[self.pos.min(self.src.len())..]
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s.as_bytes())
    }

    /// Parse a run of children into `parent` until EOF or a closing tag for
    /// `until` (exclusive). `head` receives head-ish elements (meta, title,
    /// link) found at skeleton positions.
    fn parse_children(
        &mut self,
        doc: &mut Document,
        parent: NodeId,
        head: NodeId,
        until: Option<&str>,
    ) {
        loop {
            if self.eof() {
                return;
            }
            if self.starts_with("</") {
                // Closing tag: consume; if it matches `until`, stop.
                let save = self.pos;
                self.pos += 2;
                let name = self.read_name();
                self.skip_to(b'>');
                if let Some(u) = until {
                    if name.eq_ignore_ascii_case(u) {
                        return;
                    }
                }
                // Stray closing tag for something else: if we're nested,
                // bubble it up so outer levels can match it.
                if until.is_some() {
                    self.pos = save;
                    return;
                }
                continue;
            }
            if self.starts_with("<!--") {
                match find(self.rest(), b"-->") {
                    Some(i) => self.pos += i + 3,
                    None => self.pos = self.src.len(),
                }
                continue;
            }
            if self.starts_with("<!") {
                // Doctype and friends.
                self.skip_to(b'>');
                continue;
            }
            if self.starts_with("<") {
                self.pos += 1;
                let tag = self.read_name().to_ascii_lowercase();
                if tag.is_empty() {
                    // Bare '<' in text.
                    let t = doc.alloc_text("<");
                    doc.append_child(parent, t);
                    continue;
                }
                let (attrs, self_closed) = self.read_attrs();
                // Skeleton merging: html/head/body tags re-target instead of
                // nesting duplicates.
                match tag.as_str() {
                    "html" => {
                        self.parse_children(doc, parent, head, Some("html"));
                        continue;
                    }
                    "head" => {
                        self.parse_children(doc, head, head, Some("head"));
                        continue;
                    }
                    "body" => {
                        for (k, v) in attrs {
                            doc.set_attr(parent, &k, &v);
                        }
                        self.parse_children(doc, parent, head, Some("body"));
                        continue;
                    }
                    _ => {}
                }
                let el = doc.alloc_element(&tag);
                for (k, v) in attrs {
                    doc.set_attr(el, &k, &v);
                }
                doc.append_child(parent, el);
                if self_closed || VOID_ELEMENTS.contains(&tag.as_str()) {
                    continue;
                }
                if tag == "script" || tag == "style" {
                    // Raw text until the matching close tag.
                    let close = format!("</{tag}");
                    let content = match find_ci(self.rest(), close.as_bytes()) {
                        Some(i) => {
                            let text = String::from_utf8_lossy(&self.rest()[..i]).into_owned();
                            self.pos += i;
                            self.skip_to(b'>');
                            text
                        }
                        None => {
                            let text = String::from_utf8_lossy(self.rest()).into_owned();
                            self.pos = self.src.len();
                            text
                        }
                    };
                    if !content.trim().is_empty() {
                        let t = doc.alloc_text(&content);
                        doc.append_child(el, t);
                    }
                    continue;
                }
                self.parse_children(doc, el, head, Some(&tag));
                continue;
            }
            // Text run until the next '<'.
            let end = find(self.rest(), b"<").unwrap_or(self.rest().len());
            let text = String::from_utf8_lossy(&self.rest()[..end]).into_owned();
            self.pos += end;
            if !text.trim().is_empty() {
                let t = doc.alloc_text(text.trim());
                doc.append_child(parent, t);
            }
        }
    }

    fn read_name(&mut self) -> String {
        let start = self.pos;
        while !self.eof() {
            let c = self.src[self.pos];
            if c.is_ascii_alphanumeric() || c == b'-' || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn read_attrs(&mut self) -> (Vec<(String, String)>, bool) {
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            if self.eof() {
                return (attrs, false);
            }
            match self.src[self.pos] {
                b'>' => {
                    self.pos += 1;
                    return (attrs, false);
                }
                b'/' => {
                    self.pos += 1;
                    if !self.eof() && self.src[self.pos] == b'>' {
                        self.pos += 1;
                        return (attrs, true);
                    }
                }
                _ => {
                    let name = self.read_name();
                    if name.is_empty() {
                        self.pos += 1; // junk byte inside a tag
                        continue;
                    }
                    self.skip_ws();
                    let mut value = String::new();
                    if !self.eof() && self.src[self.pos] == b'=' {
                        self.pos += 1;
                        self.skip_ws();
                        if !self.eof()
                            && (self.src[self.pos] == b'"' || self.src[self.pos] == b'\'')
                        {
                            let quote = self.src[self.pos];
                            self.pos += 1;
                            let start = self.pos;
                            while !self.eof() && self.src[self.pos] != quote {
                                self.pos += 1;
                            }
                            value =
                                String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                            self.pos = (self.pos + 1).min(self.src.len());
                        } else {
                            let start = self.pos;
                            while !self.eof()
                                && !self.src[self.pos].is_ascii_whitespace()
                                && self.src[self.pos] != b'>'
                            {
                                self.pos += 1;
                            }
                            value =
                                String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                        }
                    }
                    attrs.push((name.to_ascii_lowercase(), value));
                }
            }
        }
    }

    fn skip_ws(&mut self) {
        while !self.eof() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn skip_to(&mut self, byte: u8) {
        while !self.eof() && self.src[self.pos] != byte {
            self.pos += 1;
        }
        self.pos = (self.pos + 1).min(self.src.len());
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len().max(1))
        .position(|w| w == needle)
}

fn find_ci(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len().max(1))
        .position(|w| w.eq_ignore_ascii_case(needle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_nested_structure() {
        let doc = parse(r#"<div id="a"><p class="x">hi <b>there</b></p></div>"#);
        let div = doc.get_element_by_id("a").unwrap();
        assert_eq!(doc.tag(div), Some("div"));
        assert_eq!(doc.query_selector_all(".x").len(), 1);
        assert_eq!(doc.get_elements_by_tag_name("b").len(), 1);
        assert_eq!(doc.text_content(), "hi there");
    }

    #[test]
    fn skeleton_merging() {
        let doc = parse(
            "<html><head><meta name=\"amp\" content=\"yes\"><title>T</title></head>\
             <body class=\"home\"><h1>Hello</h1></body></html>",
        );
        // No duplicate html/head/body.
        assert_eq!(doc.get_elements_by_tag_name("html").len(), 1);
        assert_eq!(doc.get_elements_by_tag_name("head").len(), 1);
        assert_eq!(doc.get_elements_by_tag_name("body").len(), 1);
        let head = doc.head().unwrap();
        assert!(doc
            .children(head)
            .iter()
            .any(|&c| doc.tag(c) == Some("meta")));
        let body = doc.body().unwrap();
        assert_eq!(doc.get_attr(body, "class"), Some("home"));
    }

    #[test]
    fn void_and_self_closing() {
        let doc = parse(r#"<img src="x.png"><br/><input type="text">after"#);
        assert_eq!(doc.get_elements_by_tag_name("img").len(), 1);
        assert_eq!(doc.get_elements_by_tag_name("br").len(), 1);
        assert!(doc.text_content().contains("after"));
    }

    #[test]
    fn script_content_is_raw_text() {
        let doc = parse(r#"<script>if (a < b) { x("</div>"); }</script><p>t</p>"#);
        let scripts = doc.get_elements_by_tag_name("script");
        assert_eq!(scripts.len(), 1);
        // The fake close inside the string terminates the raw scan at the
        // real close tag; content survives up to it.
        assert_eq!(doc.get_elements_by_tag_name("p").len(), 1);
    }

    #[test]
    fn comments_and_doctype_skipped() {
        let doc = parse("<!DOCTYPE html><!-- <p>not real</p> --><span>ok</span>");
        assert_eq!(doc.get_elements_by_tag_name("p").len(), 0);
        assert_eq!(doc.get_elements_by_tag_name("span").len(), 1);
    }

    #[test]
    fn unquoted_and_single_quoted_attrs() {
        let doc = parse("<div id=main data-x='1 2'>t</div>");
        let div = doc.get_element_by_id("main").unwrap();
        assert_eq!(doc.get_attr(div, "data-x"), Some("1 2"));
    }

    #[test]
    fn unclosed_tags_do_not_lose_content() {
        let doc = parse("<div><p>one<p>two");
        assert!(doc.text_content().contains("one"));
        assert!(doc.text_content().contains("two"));
    }

    proptest! {
        #[test]
        fn prop_parse_never_panics(html in ".{0,300}") {
            let _ = parse(&html);
        }

        #[test]
        fn prop_parse_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
            let s = String::from_utf8_lossy(&bytes).into_owned();
            let _ = parse(&s);
        }

        #[test]
        fn prop_balanced_divs_roundtrip_count(n in 1usize..8) {
            let html = format!("{}{}", "<div>".repeat(n), "</div>".repeat(n));
            let doc = parse(&html);
            prop_assert_eq!(doc.get_elements_by_tag_name("div").len(), n);
        }
    }
}
