//! The controlled HTML5 test page (§3.2.2).
//!
//! The paper hosts Bracco's `html5-test-page` — a page composed of common
//! HTML elements — with a single script that installs the Web-API
//! interception harness. [`test_page_html`] generates our equivalent: one
//! of every element family the study's injected scripts touch (headings,
//! text, lists, a table, a form, media placeholders, `<meta>` tags, and
//! script elements in both head and body so `insertBefore` exercises both
//! `Element` and `HTMLBodyElement` receivers).

use crate::dom::Document;
use crate::html::parse;
use std::collections::BTreeMap;

/// The controlled page markup.
pub fn test_page_html() -> String {
    r##"<!DOCTYPE html>
<html>
<head>
  <meta charset="utf-8">
  <meta name="viewport" content="width=device-width, initial-scale=1">
  <meta name="description" content="WLA controlled HTML5 test page">
  <title>HTML5 Test Page</title>
  <script src="/harness/trace.js" id="wla-harness"></script>
</head>
<body>
  <header>
    <h1>HTML5 Test Page</h1>
    <p>A page of common HTML elements for interception measurements.</p>
  </header>
  <nav>
    <ul>
      <li><a href="#text">Text</a></li>
      <li><a href="#forms">Forms</a></li>
      <li><a href="#media">Media</a></li>
    </ul>
  </nav>
  <main id="content">
    <section id="text">
      <h2>Text</h2>
      <p class="lede">The quick brown fox jumps over the lazy dog.</p>
      <p>Second paragraph with <strong>bold</strong>, <em>emphasis</em>,
         <code>code</code>, and a <a href="https://example.com/">link</a>.</p>
      <blockquote>A blockquote of modest length.</blockquote>
      <ol>
        <li>Ordered one</li>
        <li>Ordered two</li>
      </ol>
      <table>
        <tr><th>Header A</th><th>Header B</th></tr>
        <tr><td>Cell 1</td><td>Cell 2</td></tr>
      </table>
    </section>
    <section id="forms">
      <h2>Forms</h2>
      <form action="/submit" method="post">
        <label for="name">Name</label>
        <input type="text" id="name" name="name">
        <label for="email">Email</label>
        <input type="email" id="email" name="email">
        <input type="checkbox" id="agree" name="agree">
        <button type="submit">Send</button>
      </form>
    </section>
    <section id="media">
      <h2>Media</h2>
      <img src="/assets/sample.png" alt="sample">
      <figure>
        <img src="/assets/figure.png" alt="figure">
        <figcaption>A captioned figure.</figcaption>
      </figure>
    </section>
  </main>
  <footer>
    <p>Footer fine print.</p>
  </footer>
  <script src="/assets/page.js"></script>
</body>
</html>
"##
    .to_owned()
}

/// The parsed controlled page.
pub fn test_page() -> Document {
    parse(&test_page_html())
}

/// Reference tag counts of the pristine page — the baseline an injected
/// script's DOM-tag-count report is compared against.
pub fn reference_tag_counts() -> BTreeMap<String, usize> {
    test_page().tag_counts()
}

/// Reference simhash of the pristine page text — the cloaking baseline.
pub fn reference_text_simhash() -> u64 {
    crate::simhash::simhash_text(&test_page().text_content())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_has_expected_structure() {
        let doc = test_page();
        assert!(doc.get_element_by_id("content").is_some());
        assert!(doc.get_element_by_id("wla-harness").is_some());
        assert_eq!(doc.get_elements_by_tag_name("script").len(), 2);
        assert_eq!(doc.get_elements_by_tag_name("meta").len(), 3);
        assert!(doc.get_elements_by_tag_name("p").len() >= 4);
        assert_eq!(doc.get_elements_by_tag_name("form").len(), 1);
        assert_eq!(doc.get_elements_by_tag_name("img").len(), 2);
    }

    #[test]
    fn head_script_comes_before_body_script() {
        let doc = test_page();
        let scripts = doc.get_elements_by_tag_name("script");
        let head = doc.head().unwrap();
        assert_eq!(doc.parent(scripts[0]), Some(head));
        let body = doc.body().unwrap();
        assert_eq!(doc.parent(scripts[1]), Some(body));
    }

    #[test]
    fn reference_counts_are_stable() {
        let a = reference_tag_counts();
        let b = reference_tag_counts();
        assert_eq!(a, b);
        assert_eq!(a["table"], 1);
        assert!(a["li"] >= 5);
    }

    #[test]
    fn reference_simhash_stable_and_nonzero() {
        let h = reference_text_simhash();
        assert_ne!(h, 0);
        assert_eq!(h, reference_text_simhash());
    }
}
