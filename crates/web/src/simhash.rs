//! 64-bit SimHash — the locality-sensitive hash Facebook's IAB computes
//! over page text and DOM elements to detect client-side cloaking
//! (Table 8, after Duan et al.'s Cloaker Catcher).
//!
//! Similar token streams map to hashes with small Hamming distance; the
//! property tests check both locality (small edits → small distance) and
//! separation (unrelated streams → large distance, in expectation).

/// FNV-1a, used as the per-token 64-bit feature hash.
fn fnv1a(token: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in token.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// SimHash over a token stream: sum per-bit votes of each token's feature
/// hash, then take the sign.
pub fn simhash64<'a, I: IntoIterator<Item = &'a str>>(tokens: I) -> u64 {
    let mut votes = [0i64; 64];
    let mut any = false;
    for token in tokens {
        any = true;
        let h = fnv1a(token);
        for (bit, vote) in votes.iter_mut().enumerate() {
            if h & (1u64 << bit) != 0 {
                *vote += 1;
            } else {
                *vote -= 1;
            }
        }
    }
    if !any {
        return 0;
    }
    let mut out = 0u64;
    for (bit, &vote) in votes.iter().enumerate() {
        if vote > 0 {
            out |= 1u64 << bit;
        }
    }
    out
}

/// Hamming distance between two hashes.
pub fn hamming(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

/// Convenience: simhash of whitespace-split text.
pub fn simhash_text(text: &str) -> u64 {
    simhash64(text.split_whitespace())
}

/// Cloaking verdict: pages whose simhashes differ by more than `threshold`
/// bits are considered different content (the cloaking signal).
pub fn looks_cloaked(reference: u64, observed: u64, threshold: u32) -> bool {
    hamming(reference, observed) > threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_streams_identical_hash() {
        let a = simhash_text("the quick brown fox jumps over the lazy dog");
        let b = simhash_text("the quick brown fox jumps over the lazy dog");
        assert_eq!(a, b);
        assert_eq!(hamming(a, b), 0);
    }

    #[test]
    fn small_edit_small_distance() {
        let base: Vec<String> = (0..200).map(|i| format!("token{i}")).collect();
        let mut edited = base.clone();
        edited[5] = "changed".into();
        edited[100] = "words".into();
        let a = simhash64(base.iter().map(String::as_str));
        let b = simhash64(edited.iter().map(String::as_str));
        assert!(hamming(a, b) <= 12, "distance {}", hamming(a, b));
    }

    #[test]
    fn unrelated_streams_far_apart() {
        let a: Vec<String> = (0..200).map(|i| format!("alpha{i}")).collect();
        let b: Vec<String> = (0..200).map(|i| format!("omega{i}")).collect();
        let d = hamming(
            simhash64(a.iter().map(String::as_str)),
            simhash64(b.iter().map(String::as_str)),
        );
        assert!(d >= 16, "distance {d}");
    }

    #[test]
    fn empty_stream_is_zero() {
        assert_eq!(simhash64(std::iter::empty::<&str>()), 0);
    }

    #[test]
    fn cloaking_verdict() {
        let served = simhash_text("buy cheap meds online now click here fast");
        let reference = simhash_text("family photo album spring flowers garden");
        assert!(looks_cloaked(reference, served, 10));
        assert!(!looks_cloaked(reference, reference, 10));
    }

    proptest! {
        #[test]
        fn prop_hamming_symmetric(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(hamming(a, b), hamming(b, a));
            prop_assert_eq!(hamming(a, a), 0);
        }

        #[test]
        fn prop_deterministic(tokens in proptest::collection::vec("[a-z]{1,8}", 0..50)) {
            let a = simhash64(tokens.iter().map(String::as_str));
            let b = simhash64(tokens.iter().map(String::as_str));
            prop_assert_eq!(a, b);
        }

        #[test]
        fn prop_single_token_hash_matches_feature_sign(token in "[a-z]{1,12}") {
            // With one token every vote is ±1, so the simhash equals the
            // token's feature hash.
            let h = simhash64([token.as_str()]);
            prop_assert_eq!(h, super::fnv1a(&token));
        }
    }
}
