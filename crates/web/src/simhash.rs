//! 64-bit SimHash — the locality-sensitive hash Facebook's IAB computes
//! over page text and DOM elements to detect client-side cloaking
//! (Table 8, after Duan et al.'s Cloaker Catcher).
//!
//! Similar token streams map to hashes with small Hamming distance; the
//! property tests check both locality (small edits → small distance) and
//! separation (unrelated streams → large distance, in expectation).
//!
//! The hot path is branch-free: instead of 64 data-dependent vote
//! branches per token, each nibble of the feature hash indexes a spread
//! table that scatters its 4 bits into 4 × 16-bit counter lanes packed in
//! one `u64` — 16 table loads and adds per token, no branches. Lanes are
//! flushed to wide counters before they can saturate, so the result is
//! exact for streams of any length; [`simhash64_scalar`] keeps the
//! original voting loop as the equivalence oracle.

/// FNV-1a, used as the per-token 64-bit feature hash.
fn fnv1a(token: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in token.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// `SPREAD[n]` scatters the 4 bits of nibble `n` into four 16-bit lanes:
/// bit `b` of the nibble lands at bit `16·b`, so adding `SPREAD[n]` bumps
/// four independent ones-counters at once.
const SPREAD: [u64; 16] = {
    let mut table = [0u64; 16];
    let mut n = 0;
    while n < 16 {
        let mut v = 0u64;
        let mut b = 0;
        while b < 4 {
            if (n >> b) & 1 == 1 {
                v |= 1 << (16 * b);
            }
            b += 1;
        }
        table[n] = v;
        n += 1;
    }
    table
};

/// Drain the packed lane accumulators into the wide per-bit counters.
#[inline]
fn flush_lanes(counts: &mut [u64; 64], acc: &mut [u64; 16]) {
    for (i, a) in acc.iter_mut().enumerate() {
        for lane in 0..4 {
            counts[4 * i + lane] += (*a >> (16 * lane)) & 0xFFFF;
        }
        *a = 0;
    }
}

/// SimHash over a token stream: count each feature bit's ones, then set
/// output bit `i` iff bit `i` was set in more than half the tokens —
/// exactly the sign of the scalar vote sum (`2·ones > n ⇔ votes > 0`).
pub fn simhash64<'a, I: IntoIterator<Item = &'a str>>(tokens: I) -> u64 {
    let mut counts = [0u64; 64];
    let mut acc = [0u64; 16];
    let mut pending: u32 = 0;
    let mut n: u64 = 0;
    for token in tokens {
        let h = fnv1a(token);
        n += 1;
        for (i, a) in acc.iter_mut().enumerate() {
            *a += SPREAD[((h >> (4 * i)) & 0xF) as usize];
        }
        pending += 1;
        // A 16-bit lane saturates at 65,535 ones; flush before the next
        // token could overflow it.
        if pending == u16::MAX as u32 {
            flush_lanes(&mut counts, &mut acc);
            pending = 0;
        }
    }
    if n == 0 {
        return 0;
    }
    flush_lanes(&mut counts, &mut acc);
    let mut out = 0u64;
    for (bit, &ones) in counts.iter().enumerate() {
        out |= u64::from(2 * ones > n) << bit;
    }
    out
}

/// The original branchy voting loop, kept as the scalar oracle the
/// branch-free path is property-tested against (and as the ablation
/// baseline in the `simhash` bench group).
pub fn simhash64_scalar<'a, I: IntoIterator<Item = &'a str>>(tokens: I) -> u64 {
    let mut votes = [0i64; 64];
    let mut any = false;
    for token in tokens {
        any = true;
        let h = fnv1a(token);
        for (bit, vote) in votes.iter_mut().enumerate() {
            if h & (1u64 << bit) != 0 {
                *vote += 1;
            } else {
                *vote -= 1;
            }
        }
    }
    if !any {
        return 0;
    }
    let mut out = 0u64;
    for (bit, &vote) in votes.iter().enumerate() {
        if vote > 0 {
            out |= 1u64 << bit;
        }
    }
    out
}

/// Hamming distance between two hashes.
pub fn hamming(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

/// Convenience: simhash of whitespace-split text.
pub fn simhash_text(text: &str) -> u64 {
    simhash64(text.split_whitespace())
}

/// Cloaking verdict: pages whose simhashes differ by more than `threshold`
/// bits are considered different content (the cloaking signal).
pub fn looks_cloaked(reference: u64, observed: u64, threshold: u32) -> bool {
    hamming(reference, observed) > threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_streams_identical_hash() {
        let a = simhash_text("the quick brown fox jumps over the lazy dog");
        let b = simhash_text("the quick brown fox jumps over the lazy dog");
        assert_eq!(a, b);
        assert_eq!(hamming(a, b), 0);
    }

    #[test]
    fn small_edit_small_distance() {
        let base: Vec<String> = (0..200).map(|i| format!("token{i}")).collect();
        let mut edited = base.clone();
        edited[5] = "changed".into();
        edited[100] = "words".into();
        let a = simhash64(base.iter().map(String::as_str));
        let b = simhash64(edited.iter().map(String::as_str));
        assert!(hamming(a, b) <= 12, "distance {}", hamming(a, b));
    }

    #[test]
    fn unrelated_streams_far_apart() {
        let a: Vec<String> = (0..200).map(|i| format!("alpha{i}")).collect();
        let b: Vec<String> = (0..200).map(|i| format!("omega{i}")).collect();
        let d = hamming(
            simhash64(a.iter().map(String::as_str)),
            simhash64(b.iter().map(String::as_str)),
        );
        assert!(d >= 16, "distance {d}");
    }

    #[test]
    fn empty_stream_is_zero() {
        assert_eq!(simhash64(std::iter::empty::<&str>()), 0);
        assert_eq!(simhash64_scalar(std::iter::empty::<&str>()), 0);
    }

    #[test]
    fn spread_table_scatters_nibble_bits() {
        for (n, spread) in SPREAD.iter().enumerate() {
            for b in 0..4 {
                assert_eq!((spread >> (16 * b)) & 0xFFFF, ((n >> b) & 1) as u64);
            }
        }
    }

    #[test]
    fn lane_flush_survives_streams_longer_than_a_lane() {
        // 70,000 tokens of the same word crosses the 65,535 per-lane
        // ceiling; without the flush every saturated lane would corrupt
        // its neighbor. One word in the majority must dominate the hash.
        let tokens = vec!["constant"; 70_000];
        assert_eq!(simhash64(tokens.iter().copied()), super::fnv1a("constant"));
        // And a mixed long stream still matches the scalar oracle.
        let mixed: Vec<String> = (0..70_000).map(|i| format!("t{}", i % 7)).collect();
        assert_eq!(
            simhash64(mixed.iter().map(String::as_str)),
            simhash64_scalar(mixed.iter().map(String::as_str)),
        );
    }

    #[test]
    fn cloaking_verdict() {
        let served = simhash_text("buy cheap meds online now click here fast");
        let reference = simhash_text("family photo album spring flowers garden");
        assert!(looks_cloaked(reference, served, 10));
        assert!(!looks_cloaked(reference, reference, 10));
    }

    proptest! {
        #[test]
        fn prop_hamming_symmetric(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(hamming(a, b), hamming(b, a));
            prop_assert_eq!(hamming(a, a), 0);
        }

        #[test]
        fn prop_deterministic(tokens in proptest::collection::vec("[a-z]{1,8}", 0..50)) {
            let a = simhash64(tokens.iter().map(String::as_str));
            let b = simhash64(tokens.iter().map(String::as_str));
            prop_assert_eq!(a, b);
        }

        #[test]
        fn prop_branch_free_matches_scalar_oracle(
            tokens in proptest::collection::vec("[ -~]{0,12}", 0..200)
        ) {
            prop_assert_eq!(
                simhash64(tokens.iter().map(String::as_str)),
                simhash64_scalar(tokens.iter().map(String::as_str))
            );
        }

        #[test]
        fn prop_single_token_hash_matches_feature_sign(token in "[a-z]{1,12}") {
            // With one token every vote is ±1, so the simhash equals the
            // token's feature hash.
            let h = simhash64([token.as_str()]);
            prop_assert_eq!(h, super::fnv1a(&token));
        }
    }
}
