//! Browser-fingerprinting surface — Table 1's fingerprinting row.
//!
//! "WebViews are significantly more vulnerable [to fingerprinting]" (Tiwari
//! et al.): every app's WebView exposes an app-specific user agent, its
//! own storage partition, and app-dependent feature toggles, so the same
//! user is *distinguishable across apps* — whereas every Custom Tab on the
//! device is the same browser with the same fingerprint.
//!
//! [`Fingerprint`] collects the classic entropy sources; the tests encode
//! the linkability contrast.

use crate::simhash::simhash64;

/// What kind of client surface is being fingerprinted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Surface {
    /// An app's WebView (app package + WebView build).
    WebView,
    /// A Custom Tab / the default browser.
    Browser,
}

/// A collected fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// Navigator user agent.
    pub user_agent: String,
    /// Canvas-rendering hash (device + engine dependent).
    pub canvas_hash: u64,
    /// Enumerated font list hash.
    pub font_hash: u64,
    /// Whether third-party cookies / storage partitioning differ per app.
    pub per_app_storage: bool,
}

impl Fingerprint {
    /// Stable 64-bit digest of the whole fingerprint.
    pub fn digest(&self) -> u64 {
        simhash64([
            self.user_agent.as_str(),
            if self.per_app_storage {
                "per-app"
            } else {
                "shared"
            },
        ]) ^ self.canvas_hash.rotate_left(17)
            ^ self.font_hash
    }
}

/// Device-constant parameters (model, Android and engine versions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Device model string.
    pub model: String,
    /// Android release.
    pub android_version: String,
    /// Chrome/WebView engine version.
    pub engine_version: String,
}

impl DeviceProfile {
    /// The study's Pixel 3 on LineageOS 19.
    pub fn pixel3() -> DeviceProfile {
        DeviceProfile {
            model: "Pixel 3".into(),
            android_version: "12".into(),
            engine_version: "110.0.5481.65".into(),
        }
    }
}

/// Collect the fingerprint a page would see from `surface`.
///
/// A WebView's user agent carries the `wv` token and — through
/// `X-Requested-With` and UA customization — is attributable to
/// `app_package`; its canvas/font measurements also vary with the app's
/// rendering configuration. A browser/CT fingerprint depends only on the
/// device profile.
pub fn collect(device: &DeviceProfile, surface: Surface, app_package: &str) -> Fingerprint {
    match surface {
        Surface::WebView => {
            let user_agent = format!(
                "Mozilla/5.0 (Linux; Android {}; {} Build) AppleWebKit/537.36 (KHTML, like Gecko) \
                 Version/4.0 Chrome/{} Mobile Safari/537.36 wv [{app_package}]",
                device.android_version, device.model, device.engine_version,
            );
            Fingerprint {
                canvas_hash: simhash64([
                    device.model.as_str(),
                    device.engine_version.as_str(),
                    app_package,
                ]),
                font_hash: simhash64(["roboto", "noto", app_package]),
                user_agent,
                per_app_storage: true,
            }
        }
        Surface::Browser => {
            let user_agent = format!(
                "Mozilla/5.0 (Linux; Android {}; {}) AppleWebKit/537.36 (KHTML, like Gecko) \
                 Chrome/{} Mobile Safari/537.36",
                device.android_version, device.model, device.engine_version,
            );
            Fingerprint {
                canvas_hash: simhash64([device.model.as_str(), device.engine_version.as_str()]),
                font_hash: simhash64(["roboto", "noto"]),
                user_agent,
                per_app_storage: false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn webviews_of_different_apps_are_distinguishable() {
        let device = DeviceProfile::pixel3();
        let a = collect(&device, Surface::WebView, "com.facebook.katana");
        let b = collect(&device, Surface::WebView, "kik.android");
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.user_agent, b.user_agent);
    }

    #[test]
    fn custom_tabs_share_one_fingerprint_across_apps() {
        // "Same default web browser used across multiple apps" (Table 1):
        // the app launching the CT leaves no trace in the fingerprint.
        let device = DeviceProfile::pixel3();
        let a = collect(&device, Surface::Browser, "com.facebook.katana");
        let b = collect(&device, Surface::Browser, "kik.android");
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn webview_ua_carries_the_wv_token() {
        let device = DeviceProfile::pixel3();
        let wv = collect(&device, Surface::WebView, "com.app");
        assert!(wv.user_agent.contains(" wv "));
        let browser = collect(&device, Surface::Browser, "com.app");
        assert!(!browser.user_agent.contains(" wv "));
    }

    #[test]
    fn storage_partitioning_differs() {
        let device = DeviceProfile::pixel3();
        assert!(collect(&device, Surface::WebView, "a").per_app_storage);
        assert!(!collect(&device, Surface::Browser, "a").per_app_storage);
    }

    #[test]
    fn different_devices_differ_everywhere() {
        let p3 = DeviceProfile::pixel3();
        let other = DeviceProfile {
            model: "Pixel 7".into(),
            android_version: "14".into(),
            engine_version: "120.0.0.1".into(),
        };
        assert_ne!(
            collect(&p3, Surface::Browser, "a").digest(),
            collect(&other, Surface::Browser, "a").digest()
        );
    }
}
