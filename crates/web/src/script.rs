//! Injected-script effects.
//!
//! Each [`ScriptEffect`] models one behaviour the paper observed apps
//! injecting into their WebView-based IABs (Table 8), executed *for real*
//! against an instrumented [`DomSession`] — so the Web-API calls each
//! effect makes are exactly what the measurement server records, and the
//! Table 9 rows are measured rather than asserted.

use crate::simhash::{simhash64, simhash_text};
use crate::webapi::DomSession;
use std::collections::BTreeMap;

/// A JSON-ish Google Ads payload, as found injected by Moj, Chingari, and
/// Kik. The study observed `width`/`height` pinned to 0 with
/// `notVisibleReason: "noAdView"` on the controlled page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdPayload {
    /// Ad unit path.
    pub ad_unit: String,
    /// Network host the creative would come from.
    pub source_host: String,
    /// Requested slot width.
    pub width: u32,
    /// Requested slot height.
    pub height: u32,
}

/// One injected-script behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptEffect {
    /// Insert a `<script src=…>` element (Listing 1 — the Facebook/
    /// Instagram autofill SDK loader).
    InsertScriptElement {
        /// Script URL.
        src: String,
        /// Idempotency id (the loader returns early if it exists).
        element_id: String,
    },
    /// Return a frequency dictionary of DOM tag counts (Facebook).
    DomTagCounts,
    /// Return locality-sensitive hashes for (text+DOM, text, DOM) —
    /// Cloaker-Catcher-style cloaking detection (Facebook).
    SimHashPage,
    /// Log performance metrics: DOMContentLoaded time and AMP support
    /// (Instagram).
    LogPerformance {
        /// Simulated DOMContentLoaded timing to report.
        dom_content_loaded_ms: u64,
    },
    /// Parse an ad payload and display the ad iff a compatible ad view
    /// exists (Moj / Chingari / Kik via the Google Ads bridge). Makes no
    /// Web-API calls when the slot is zero-sized — matching the paper's
    /// observation that Moj/Chingari produced no recorded API usage.
    AdProbe(AdPayload),
    /// Read-only page scan over ad-slot selectors and meta tags (Kik).
    ReadOnlyScan,
}

/// What an effect returned to the injecting app.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptOutcome {
    /// Script element inserted (or found already present).
    ScriptInserted {
        /// URL inserted.
        src: String,
        /// Whether the loader short-circuited on the idempotency id.
        already_present: bool,
    },
    /// Tag frequency dictionary.
    TagCounts(BTreeMap<String, usize>),
    /// The three locality-sensitive hashes.
    SimHashes {
        /// Text and DOM elements combined.
        text_and_dom: u64,
        /// Text only.
        text: u64,
        /// DOM elements only.
        dom: u64,
    },
    /// Performance log line.
    Performance {
        /// DOMContentLoaded, milliseconds.
        dom_content_loaded_ms: u64,
        /// Whether the page declares AMP support.
        is_amp: bool,
    },
    /// Ad probe result.
    AdResult {
        /// Whether an ad was displayed.
        displayed: bool,
        /// Reason reported when not displayed.
        not_visible_reason: Option<String>,
    },
    /// Read-only scan result.
    ScanResult {
        /// Ad-slot candidates found.
        ad_slots: usize,
        /// Meta tags inspected.
        metas: usize,
    },
}

/// Execute an effect that never mutates the DOM directly against a shared
/// document, without materializing an instrumented session. Returns the
/// same outcome [`execute`] would produce (the unit tests pin the two
/// paths together); `None` when the effect mutates and needs a
/// visit-local session. This is the crawl pipeline's fast path: prepared
/// pages stay un-cloned across visits whose scripts only read.
pub fn execute_readonly(effect: &ScriptEffect, doc: &crate::Document) -> Option<ScriptOutcome> {
    match effect {
        ScriptEffect::DomTagCounts => {
            let mut counts: BTreeMap<String, usize> = BTreeMap::new();
            for node in doc.query_selector_all("*") {
                if let Some(tag) = doc.tag(node) {
                    *counts.entry(tag.to_owned()).or_insert(0) += 1;
                }
            }
            Some(ScriptOutcome::TagCounts(counts))
        }

        ScriptEffect::SimHashPage => {
            let body = *doc
                .get_elements_by_tag_name("body")
                .first()
                .expect("page has a body");
            // Subtree element walk, in the same order the session's
            // `Element.getElementsByTagName(body, "*")` visits.
            let mut dom_tokens: Vec<String> = Vec::new();
            let mut stack = vec![body];
            while let Some(id) = stack.pop() {
                if id != body {
                    if let Some(tag) = doc.tag(id) {
                        dom_tokens.push(tag.to_owned());
                        if doc.has_attr(id, "id") {
                            dom_tokens.push("#has-id".to_owned());
                        }
                    }
                }
                for &c in doc.children(id).iter().rev() {
                    stack.push(c);
                }
            }
            let text = doc.text_content();
            Some(ScriptOutcome::SimHashes {
                text_and_dom: simhash64(
                    text.split_whitespace()
                        .chain(dom_tokens.iter().map(String::as_str)),
                ),
                text: simhash_text(&text),
                dom: simhash64(dom_tokens.iter().map(String::as_str)),
            })
        }

        // A zero-sized slot bails before touching the DOM at all.
        ScriptEffect::AdProbe(payload) if payload.width == 0 || payload.height == 0 => {
            Some(ScriptOutcome::AdResult {
                displayed: false,
                not_visible_reason: Some("noAdView".to_owned()),
            })
        }

        ScriptEffect::ReadOnlyScan => {
            let slots = doc.query_selector_all(".adsbygoogle, ins");
            let metas = doc.query_selector_all("meta");
            let inspected = metas
                .iter()
                .filter(|&&meta| doc.get_attr(meta, "name").is_some())
                .count();
            Some(ScriptOutcome::ScanResult {
                ad_slots: slots.len(),
                metas: inspected,
            })
        }

        _ => None,
    }
}

/// Execute one effect against the session.
pub fn execute(effect: &ScriptEffect, session: &mut DomSession) -> ScriptOutcome {
    match effect {
        ScriptEffect::InsertScriptElement { src, element_id } => {
            // Mirrors Listing 1: bail if already present; otherwise insert
            // before the first <script>.
            if session.get_element_by_id(element_id).is_some() {
                return ScriptOutcome::ScriptInserted {
                    src: src.clone(),
                    already_present: true,
                };
            }
            let scripts = session.get_elements_by_tag_name("script");
            let fjs = session.collection_item(&scripts, 0);
            let js = session.create_element("script");
            session.doc.set_attr(js, "id", element_id);
            session.doc.set_attr(js, "src", src);
            match fjs {
                Some(fjs) => {
                    let parent = session
                        .doc
                        .parent(fjs)
                        .unwrap_or_else(|| session.doc.body().expect("body exists"));
                    session.insert_before(parent, js, fjs);
                }
                None => {
                    let body = session.doc.body().expect("body exists");
                    let first = session.doc.children(body).first().copied();
                    match first {
                        Some(first) => session.insert_before(body, js, first),
                        None => session.doc.append_child(body, js),
                    }
                }
            }
            ScriptOutcome::ScriptInserted {
                src: src.clone(),
                already_present: false,
            }
        }

        ScriptEffect::DomTagCounts => {
            let all = session.query_selector_all("*");
            let mut counts: BTreeMap<String, usize> = BTreeMap::new();
            for i in 0..all.len() {
                if let Some(node) = session.nodelist_item(&all, i) {
                    if let Some(tag) = session.doc.tag(node) {
                        *counts.entry(tag.to_owned()).or_insert(0) += 1;
                    }
                }
            }
            ScriptOutcome::TagCounts(counts)
        }

        ScriptEffect::SimHashPage => {
            let bodies = session.get_elements_by_tag_name("body");
            let body = session
                .collection_item(&bodies, 0)
                .expect("page has a body");
            let elements = session.element_get_elements_by_tag_name(body, "*");
            // DOM token stream: tag names plus presence of key attributes.
            let mut dom_tokens: Vec<String> = Vec::with_capacity(elements.len() * 2);
            for &el in &elements {
                if let Some(tag) = session.doc.tag(el) {
                    dom_tokens.push(tag.to_owned());
                }
                if session.has_attribute(el, "id") {
                    dom_tokens.push("#has-id".to_owned());
                }
            }
            let text = session.doc.text_content();
            let text_hash = simhash_text(&text);
            let dom_hash = simhash64(dom_tokens.iter().map(String::as_str));
            let combined = simhash64(
                text.split_whitespace()
                    .chain(dom_tokens.iter().map(String::as_str)),
            );
            ScriptOutcome::SimHashes {
                text_and_dom: combined,
                text: text_hash,
                dom: dom_hash,
            }
        }

        ScriptEffect::LogPerformance {
            dom_content_loaded_ms,
        } => {
            session.add_event_listener("DOMContentLoaded");
            session.remove_event_listener("DOMContentLoaded");
            let metas = session.get_elements_by_tag_name("meta");
            let mut is_amp = false;
            for i in 0..metas.len() {
                if let Some(meta) = session.collection_item(&metas, i) {
                    if let Some(name) = session.get_attribute(meta, "name") {
                        if name == "amp-version" || name == "amp" {
                            is_amp = true;
                        }
                    }
                }
            }
            // Drop a timing marker into the body, as the logger script does.
            let marker = session.create_element("span");
            session.doc.set_attr(marker, "id", "wla-perf-marker");
            let body = session.doc.body().expect("body exists");
            if let Some(&first) = session.doc.children(body).first() {
                session.insert_before(body, marker, first);
            } else {
                session.doc.append_child(body, marker);
            }
            ScriptOutcome::Performance {
                dom_content_loaded_ms: *dom_content_loaded_ms,
                is_amp,
            }
        }

        ScriptEffect::AdProbe(payload) => {
            if payload.width == 0 || payload.height == 0 {
                // Zero-sized slot: the injected code bails before touching
                // the DOM — no Web-API calls are recorded.
                return ScriptOutcome::AdResult {
                    displayed: false,
                    not_visible_reason: Some("noAdView".to_owned()),
                };
            }
            let slots = session.query_selector_all(".adsbygoogle, ins");
            if slots.is_empty() {
                ScriptOutcome::AdResult {
                    displayed: false,
                    not_visible_reason: Some("noAdView".to_owned()),
                }
            } else {
                let ad = session.create_element("iframe");
                session
                    .doc
                    .set_attr(ad, "src", &format!("https://{}/ad", payload.source_host));
                let slot = slots[0];
                let children = session.doc.children(slot).first().copied();
                match children {
                    Some(first) => session.insert_before(slot, ad, first),
                    None => session.doc.append_child(slot, ad),
                }
                ScriptOutcome::AdResult {
                    displayed: true,
                    not_visible_reason: None,
                }
            }
        }

        ScriptEffect::ReadOnlyScan => {
            let slots = session.html_document_query_selector_all(".adsbygoogle, ins");
            let metas = session.query_selector_all("meta");
            let mut inspected = 0;
            for &meta in &metas {
                if session.get_attribute(meta, "name").is_some() {
                    inspected += 1;
                }
            }
            ScriptOutcome::ScanResult {
                ad_slots: slots.len(),
                metas: inspected,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testpage::{reference_tag_counts, test_page};

    fn session() -> DomSession {
        DomSession::new(test_page())
    }

    #[test]
    fn readonly_path_matches_session_execution() {
        let read_only = [
            ScriptEffect::DomTagCounts,
            ScriptEffect::SimHashPage,
            ScriptEffect::AdProbe(AdPayload {
                ad_unit: "/1/x".into(),
                source_host: "ads.example".into(),
                width: 0,
                height: 0,
            }),
            ScriptEffect::ReadOnlyScan,
        ];
        for effect in &read_only {
            let doc = test_page();
            let shared = execute_readonly(effect, &doc).expect("read-only");
            let mut s = DomSession::new(doc);
            assert_eq!(shared, execute(effect, &mut s), "{effect:?}");
        }
        // Mutating effects refuse the shared path.
        for effect in [
            ScriptEffect::InsertScriptElement {
                src: "//x/y.js".into(),
                element_id: "i".into(),
            },
            ScriptEffect::LogPerformance {
                dom_content_loaded_ms: 1,
            },
            ScriptEffect::AdProbe(AdPayload {
                ad_unit: "/1/x".into(),
                source_host: "ads.example".into(),
                width: 300,
                height: 250,
            }),
        ] {
            assert!(execute_readonly(&effect, &test_page()).is_none());
        }
    }

    #[test]
    fn autofill_loader_inserts_once() {
        let mut s = session();
        let effect = ScriptEffect::InsertScriptElement {
            src: "//connect.facebook.net/en_US/iab.autofill.enhanced.js".into(),
            element_id: "instagram-autofill-sdk".into(),
        };
        match execute(&effect, &mut s) {
            ScriptOutcome::ScriptInserted {
                already_present, ..
            } => assert!(!already_present),
            other => panic!("{other:?}"),
        }
        // Idempotent on second run (Listing 1's getElementById guard).
        match execute(&effect, &mut s) {
            ScriptOutcome::ScriptInserted {
                already_present, ..
            } => assert!(already_present),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.doc.get_elements_by_tag_name("script").len(), 3);
        // First script lives in head → Element.insertBefore receiver.
        assert!(s
            .calls()
            .iter()
            .any(|c| c.interface == "Element" && c.method == "insertBefore"));
    }

    #[test]
    fn tag_counts_match_reference_on_pristine_page() {
        let mut s = session();
        match execute(&ScriptEffect::DomTagCounts, &mut s) {
            ScriptOutcome::TagCounts(counts) => {
                assert_eq!(counts, reference_tag_counts());
            }
            other => panic!("{other:?}"),
        }
        // NodeList.item was exercised.
        assert!(s
            .calls()
            .iter()
            .any(|c| c.interface == "NodeList" && c.method == "item"));
    }

    #[test]
    fn simhash_detects_injected_content() {
        let mut clean = session();
        let clean_hash = match execute(&ScriptEffect::SimHashPage, &mut clean) {
            ScriptOutcome::SimHashes { text_and_dom, .. } => text_and_dom,
            other => panic!("{other:?}"),
        };
        // A cloaked page: replace body text wholesale.
        let mut doc = test_page();
        let body = doc.body().unwrap();
        for _ in 0..40 {
            let spam = doc.alloc_element("div");
            doc.append_child(body, spam);
            let t = doc.alloc_text("cheap meds casino bonus winner prize claim");
            doc.append_child(spam, t);
        }
        let mut cloaked = DomSession::new(doc);
        let cloaked_hash = match execute(&ScriptEffect::SimHashPage, &mut cloaked) {
            ScriptOutcome::SimHashes { text_and_dom, .. } => text_and_dom,
            other => panic!("{other:?}"),
        };
        assert!(
            crate::simhash::hamming(clean_hash, cloaked_hash) > 8,
            "distance {}",
            crate::simhash::hamming(clean_hash, cloaked_hash)
        );
    }

    #[test]
    fn performance_logger_covers_table9_calls() {
        let mut s = session();
        match execute(
            &ScriptEffect::LogPerformance {
                dom_content_loaded_ms: 340,
            },
            &mut s,
        ) {
            ScriptOutcome::Performance {
                dom_content_loaded_ms,
                is_amp,
            } => {
                assert_eq!(dom_content_loaded_ms, 340);
                assert!(!is_amp); // test page is not AMP
            }
            other => panic!("{other:?}"),
        }
        let usage = s.distinct_api_usage();
        for (iface, method) in [
            ("Document", "addEventListener"),
            ("Document", "removeEventListener"),
            ("Document", "getElementsByTagName"),
            ("HTMLCollection", "item"),
            ("HTMLMetaElement", "getAttribute"),
            ("HTMLBodyElement", "insertBefore"),
        ] {
            assert!(
                usage.contains(&(iface.to_owned(), method.to_owned())),
                "missing {iface}.{method}: {usage:?}"
            );
        }
    }

    #[test]
    fn zero_sized_ad_probe_touches_nothing() {
        let mut s = session();
        let outcome = execute(
            &ScriptEffect::AdProbe(AdPayload {
                ad_unit: "/21775744923/example".into(),
                source_host: "doubleclick.net".into(),
                width: 0,
                height: 0,
            }),
            &mut s,
        );
        assert_eq!(
            outcome,
            ScriptOutcome::AdResult {
                displayed: false,
                not_visible_reason: Some("noAdView".into()),
            }
        );
        // The paper: "nor did our server record any Web API usage".
        assert!(s.calls().is_empty());
    }

    #[test]
    fn sized_ad_probe_without_slot_reports_no_ad_view() {
        let mut s = session();
        let outcome = execute(
            &ScriptEffect::AdProbe(AdPayload {
                ad_unit: "/x".into(),
                source_host: "doubleclick.net".into(),
                width: 320,
                height: 50,
            }),
            &mut s,
        );
        assert_eq!(
            outcome,
            ScriptOutcome::AdResult {
                displayed: false,
                not_visible_reason: Some("noAdView".into()),
            }
        );
        // This variant does scan the page.
        assert!(!s.calls().is_empty());
    }

    #[test]
    fn sized_ad_probe_with_slot_displays() {
        let mut doc = test_page();
        let body = doc.body().unwrap();
        let slot = doc.alloc_element("ins");
        doc.set_attr(slot, "class", "adsbygoogle");
        doc.append_child(body, slot);
        let mut s = DomSession::new(doc);
        let outcome = execute(
            &ScriptEffect::AdProbe(AdPayload {
                ad_unit: "/x".into(),
                source_host: "doubleclick.net".into(),
                width: 320,
                height: 50,
            }),
            &mut s,
        );
        assert_eq!(
            outcome,
            ScriptOutcome::AdResult {
                displayed: true,
                not_visible_reason: None,
            }
        );
        assert_eq!(s.doc.get_elements_by_tag_name("iframe").len(), 1);
    }

    #[test]
    fn readonly_scan_matches_kik_table9_row() {
        let mut s = session();
        execute(&ScriptEffect::ReadOnlyScan, &mut s);
        let usage = s.distinct_api_usage();
        assert_eq!(
            usage,
            vec![
                ("Document".to_owned(), "querySelectorAll".to_owned()),
                ("HTMLDocument".to_owned(), "querySelectorAll".to_owned()),
                ("HTMLMetaElement".to_owned(), "getAttribute".to_owned()),
            ]
        );
        // Read-only: the DOM is unchanged.
        assert_eq!(s.doc.tag_counts(), reference_tag_counts());
    }
}
