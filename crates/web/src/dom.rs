//! A small arena-based DOM.
//!
//! Nodes live in a flat arena addressed by [`NodeId`]; elements carry a tag,
//! attributes, and child lists; text nodes carry their content. The
//! operations exposed are the ones Table 9's Web APIs need:
//! `getElementById`, `createElement`, `querySelectorAll` (tag / `#id` /
//! `.class` / `*` selectors), `getElementsByTagName`, `insertBefore`,
//! `hasAttribute`, `getAttribute`, plus tag-frequency counting and text
//! extraction for the simhash/cloaking effects.

use std::collections::BTreeMap;

/// Index of a node in its document's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// One DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// An element with a tag, attributes, and children.
    Element {
        /// Lowercased tag name.
        tag: String,
        /// Attribute map.
        attrs: BTreeMap<String, String>,
        /// Child nodes in order.
        children: Vec<NodeId>,
        /// Parent, if attached.
        parent: Option<NodeId>,
    },
    /// A text node.
    Text {
        /// Content.
        content: String,
        /// Parent, if attached.
        parent: Option<NodeId>,
    },
}

/// A DOM document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Document {
    /// New document with an `<html><head/><body/></html>` skeleton.
    pub fn new() -> Document {
        let mut doc = Document {
            nodes: Vec::new(),
            root: NodeId(0),
        };
        let html = doc.alloc_element("html");
        doc.root = html;
        let head = doc.alloc_element("head");
        let body = doc.alloc_element("body");
        doc.append_child(html, head);
        doc.append_child(html, body);
        doc
    }

    /// Root element (`<html>`).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The `<body>` element.
    pub fn body(&self) -> Option<NodeId> {
        self.get_elements_by_tag_name("body").first().copied()
    }

    /// The `<head>` element.
    pub fn head(&self) -> Option<NodeId> {
        self.get_elements_by_tag_name("head").first().copied()
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Number of nodes in the arena (including detached ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty (never true after `new`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Allocate a detached element.
    pub fn alloc_element(&mut self, tag: &str) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Element {
            tag: tag.to_ascii_lowercase(),
            attrs: BTreeMap::new(),
            children: Vec::new(),
            parent: None,
        });
        id
    }

    /// Allocate a detached text node.
    pub fn alloc_text(&mut self, content: &str) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Text {
            content: content.to_owned(),
            parent: None,
        });
        id
    }

    /// Set an attribute.
    pub fn set_attr(&mut self, id: NodeId, name: &str, value: &str) {
        if let Node::Element { attrs, .. } = &mut self.nodes[id.0] {
            attrs.insert(name.to_ascii_lowercase(), value.to_owned());
        }
    }

    /// Get an attribute.
    pub fn get_attr(&self, id: NodeId, name: &str) -> Option<&str> {
        match self.node(id) {
            Node::Element { attrs, .. } => {
                attrs.get(&name.to_ascii_lowercase()).map(|s| s.as_str())
            }
            Node::Text { .. } => None,
        }
    }

    /// Does the element carry the attribute?
    pub fn has_attr(&self, id: NodeId, name: &str) -> bool {
        self.get_attr(id, name).is_some()
    }

    /// Tag of an element node.
    pub fn tag(&self, id: NodeId) -> Option<&str> {
        match self.node(id) {
            Node::Element { tag, .. } => Some(tag.as_str()),
            Node::Text { .. } => None,
        }
    }

    /// Parent of a node.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        match self.node(id) {
            Node::Element { parent, .. } | Node::Text { parent, .. } => *parent,
        }
    }

    /// Children of an element.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        match self.node(id) {
            Node::Element { children, .. } => children,
            Node::Text { .. } => &[],
        }
    }

    /// Append `child` to `parent`, detaching it from any previous parent.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        self.detach(child);
        if let Node::Element { children, .. } = &mut self.nodes[parent.0] {
            children.push(child);
        }
        self.set_parent(child, Some(parent));
    }

    /// Insert `node` into `parent` immediately before `reference`.
    /// Falls back to append when `reference` is not a child of `parent`
    /// (matching DOM semantics loosely but safely).
    pub fn insert_before(&mut self, parent: NodeId, node: NodeId, reference: NodeId) {
        self.detach(node);
        if let Node::Element { children, .. } = &mut self.nodes[parent.0] {
            match children.iter().position(|&c| c == reference) {
                Some(pos) => children.insert(pos, node),
                None => children.push(node),
            }
        }
        self.set_parent(node, Some(parent));
    }

    fn detach(&mut self, id: NodeId) {
        if let Some(old) = self.parent(id) {
            if let Node::Element { children, .. } = &mut self.nodes[old.0] {
                children.retain(|&c| c != id);
            }
        }
        self.set_parent(id, None);
    }

    fn set_parent(&mut self, id: NodeId, parent: Option<NodeId>) {
        match &mut self.nodes[id.0] {
            Node::Element { parent: p, .. } | Node::Text { parent: p, .. } => *p = parent,
        }
    }

    /// Depth-first traversal from the root (attached nodes only).
    pub fn walk(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            out.push(id);
            let children = self.children(id);
            for &c in children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// First element with `id="..."`.
    pub fn get_element_by_id(&self, id_value: &str) -> Option<NodeId> {
        self.walk()
            .into_iter()
            .find(|&n| self.get_attr(n, "id") == Some(id_value))
    }

    /// All attached elements with the tag (or every element for `*`).
    pub fn get_elements_by_tag_name(&self, tag: &str) -> Vec<NodeId> {
        let tag = tag.to_ascii_lowercase();
        self.walk()
            .into_iter()
            .filter(|&n| match self.tag(n) {
                Some(t) => tag == "*" || t == tag,
                None => false,
            })
            .collect()
    }

    /// `querySelectorAll` for the selector subset: `*`, `tag`, `#id`,
    /// `.class`, and comma-separated unions thereof.
    pub fn query_selector_all(&self, selector: &str) -> Vec<NodeId> {
        let parts: Vec<&str> = selector.split(',').map(str::trim).collect();
        self.walk()
            .into_iter()
            .filter(|&n| {
                parts.iter().any(|sel| match self.tag(n) {
                    Some(tag) => match sel.strip_prefix('#') {
                        Some(id) => self.get_attr(n, "id") == Some(id),
                        None => match sel.strip_prefix('.') {
                            Some(class) => self
                                .get_attr(n, "class")
                                .is_some_and(|c| c.split_whitespace().any(|x| x == class)),
                            None => *sel == "*" || tag.eq_ignore_ascii_case(sel),
                        },
                    },
                    None => false,
                })
            })
            .collect()
    }

    /// Frequency dictionary of attached element tags — what Facebook's
    /// injected JS returns (Table 8: "Returns DOM Tag Counts").
    pub fn tag_counts(&self) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for n in self.walk() {
            if let Some(tag) = self.tag(n) {
                *counts.entry(tag.to_owned()).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Concatenated text content of the attached tree.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        for n in self.walk() {
            if let Node::Text { content, .. } = self.node(n) {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(content.trim());
            }
        }
        out
    }
}

impl Default for Document {
    fn default() -> Self {
        Document::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        let mut d = Document::new();
        let body = d.body().unwrap();
        let div = d.alloc_element("div");
        d.set_attr(div, "id", "main");
        d.set_attr(div, "class", "container wide");
        d.append_child(body, div);
        let p = d.alloc_element("p");
        d.append_child(div, p);
        let t = d.alloc_text("hello world");
        d.append_child(p, t);
        let s = d.alloc_element("script");
        d.set_attr(s, "src", "https://cdn.example/app.js");
        d.append_child(body, s);
        d
    }

    #[test]
    fn skeleton_exists() {
        let d = Document::new();
        assert!(d.body().is_some());
        assert!(d.head().is_some());
        assert_eq!(d.tag(d.root()), Some("html"));
    }

    #[test]
    fn id_and_tag_queries() {
        let d = sample();
        assert!(d.get_element_by_id("main").is_some());
        assert!(d.get_element_by_id("missing").is_none());
        assert_eq!(d.get_elements_by_tag_name("p").len(), 1);
        assert_eq!(d.get_elements_by_tag_name("*").len(), 6); // html head body div p script
    }

    #[test]
    fn selector_queries() {
        let d = sample();
        assert_eq!(d.query_selector_all("#main").len(), 1);
        assert_eq!(d.query_selector_all(".container").len(), 1);
        assert_eq!(d.query_selector_all(".wide").len(), 1);
        assert_eq!(d.query_selector_all(".missing").len(), 0);
        assert_eq!(d.query_selector_all("p, script").len(), 2);
        assert_eq!(d.query_selector_all("*").len(), 6);
    }

    #[test]
    fn insert_before_orders_children() {
        let mut d = sample();
        let body = d.body().unwrap();
        let first = d.children(body)[0];
        let banner = d.alloc_element("aside");
        d.insert_before(body, banner, first);
        assert_eq!(d.children(body)[0], banner);
        assert_eq!(d.parent(banner), Some(body));
    }

    #[test]
    fn insert_before_missing_reference_appends() {
        let mut d = sample();
        let body = d.body().unwrap();
        let detached_ref = d.alloc_element("span");
        let node = d.alloc_element("em");
        d.insert_before(body, node, detached_ref);
        assert_eq!(*d.children(body).last().unwrap(), node);
    }

    #[test]
    fn reparenting_detaches() {
        let mut d = sample();
        let div = d.get_element_by_id("main").unwrap();
        let p = d.children(div)[0];
        let head = d.head().unwrap();
        d.append_child(head, p);
        assert!(d.children(div).is_empty());
        assert_eq!(d.parent(p), Some(head));
    }

    #[test]
    fn tag_counts_and_text() {
        let d = sample();
        let counts = d.tag_counts();
        assert_eq!(counts["div"], 1);
        assert_eq!(counts["html"], 1);
        assert_eq!(d.text_content(), "hello world");
    }
}
