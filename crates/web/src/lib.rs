//! # wla-web — simulated web platform
//!
//! The dynamic study instruments a *web page*: the controlled HTML5 test
//! page whose Web-API layer reports every intercepted call to the
//! measurement server, DOM manipulation by injected scripts, simhash-based
//! cloaking detection (Facebook's IAB computes locality-sensitive hashes of
//! the page, after Cloaker Catcher), and DOM-tag frequency counting.
//!
//! * [`dom`] — a DOM tree (elements, attributes, text) with the traversal
//!   and mutation operations Table 9's interfaces expose;
//! * [`html`] — an HTML parser subset sufficient for the test page and the
//!   synthetic top-site pages;
//! * [`testpage`] — the HTML5 test page (after Bracco's `html5-test-page`);
//! * [`webapi`] — the interception layer: a [`webapi::DomSession`] wraps a
//!   document, records every API call, and (when attached) reports each to
//!   the measurement server over real loopback HTTP;
//! * [`simhash`] — 64-bit simhash + Hamming distance for cloaking checks;
//! * [`script`] — injected-script effects: the behaviours Table 8 infers
//!   (autofill SDK insertion, DOM tag counts, simhash, performance logging,
//!   ad-payload probing), executed for real against the DOM session.

//! ```
//! use wla_web::html::parse;
//! use wla_web::simhash::{hamming, simhash_text};
//!
//! let doc = parse("<div id=\"main\"><p>hello <b>world</b></p></div>");
//! assert!(doc.get_element_by_id("main").is_some());
//! assert_eq!(doc.text_content(), "hello world");
//!
//! let a = simhash_text("the quick brown fox");
//! let b = simhash_text("the quick brown foxes");
//! assert!(hamming(a, b) < 24);
//! ```

pub mod dom;
pub mod fingerprint;
pub mod html;
pub mod script;
pub mod simhash;
pub mod testpage;
pub mod webapi;
pub mod website;

pub use dom::{Document, Node, NodeId};
pub use script::{ScriptEffect, ScriptOutcome};
pub use simhash::{hamming, simhash64, simhash64_scalar};
pub use webapi::{ApiCall, DomSession};
pub use website::{ClientContext, LoginPage, WebViewLoginPolicy, Website};
