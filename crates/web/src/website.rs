//! Website-side WebView defenses (§5 and Figure 5).
//!
//! "Every request that comes from a WebView has a `X-Requested-With`
//! header field with the app's APK name as its value. The steps could vary
//! from showing the user a prompt … to completely blocking access to
//! sessions from WebViews, as Facebook did." This module models a website
//! that inspects that header and applies a policy — the server-side
//! counterpart to everything else in this crate.

use crate::dom::Document;
use crate::html::parse;

/// How a site treats sessions arriving from a WebView.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WebViewLoginPolicy {
    /// No special handling (most sites).
    Allow,
    /// Show a consent/risk prompt before sensitive actions.
    Warn,
    /// Refuse login entirely — Facebook's "Log in Disabled" (Figure 5).
    Block,
}

/// What the client looks like to the site.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientContext {
    /// Value of `X-Requested-With`, present iff the request came from a
    /// WebView (CTs and browsers do not send it).
    pub x_requested_with: Option<String>,
}

impl ClientContext {
    /// A browser or Custom-Tab client.
    pub fn browser() -> ClientContext {
        ClientContext::default()
    }

    /// A WebView client belonging to `apk`.
    pub fn webview(apk: &str) -> ClientContext {
        ClientContext {
            x_requested_with: Some(apk.to_owned()),
        }
    }

    /// Did the request come from a WebView?
    pub fn is_webview(&self) -> bool {
        self.x_requested_with.is_some()
    }
}

/// A site with a login page and a WebView policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Website {
    /// Host name.
    pub host: String,
    /// WebView-session policy.
    pub policy: WebViewLoginPolicy,
}

/// Outcome of a login-page request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoginPage {
    /// The normal login form was served.
    Form(Document),
    /// A warning interstitial was served; login continues after consent.
    Warning(Document),
    /// Login is disabled for this client (Figure 5).
    Disabled(Document),
}

impl LoginPage {
    /// Can the user authenticate through this response (possibly after a
    /// consent step)?
    pub fn login_possible(&self) -> bool {
        !matches!(self, LoginPage::Disabled(_))
    }
}

impl Website {
    /// A site with the given policy.
    pub fn new(host: &str, policy: WebViewLoginPolicy) -> Website {
        Website {
            host: host.to_owned(),
            policy,
        }
    }

    /// Facebook's configuration since October 2021.
    pub fn facebook() -> Website {
        Website::new("facebook.com", WebViewLoginPolicy::Block)
    }

    /// Serve the login page for `client`.
    pub fn login_page(&self, client: &ClientContext) -> LoginPage {
        if !client.is_webview() {
            return LoginPage::Form(self.form_document());
        }
        match self.policy {
            WebViewLoginPolicy::Allow => LoginPage::Form(self.form_document()),
            WebViewLoginPolicy::Warn => {
                let html = format!(
                    "<html><body><div class=\"warning\"><h1>Security notice</h1>\
                     <p>You are signing in to {} from inside the app {}. \
                     Continue only if you trust this app.</p>\
                     <button id=\"consent\">Continue</button></div></body></html>",
                    self.host,
                    client.x_requested_with.as_deref().unwrap_or("unknown"),
                );
                LoginPage::Warning(parse(&html))
            }
            WebViewLoginPolicy::Block => {
                let html = format!(
                    "<html><body><div class=\"error\"><h1>Log in Disabled</h1>\
                     <p>For your account security, logging in to {} from an \
                     embedded browser is disabled. Open this page in your \
                     browser instead.</p></div></body></html>",
                    self.host,
                );
                LoginPage::Disabled(parse(&html))
            }
        }
    }
}

impl Website {
    fn form_document(&self) -> Document {
        parse(&format!(
            "<html><body><form action=\"https://{}/session\" method=\"post\">\
             <input type=\"text\" id=\"username\" name=\"username\">\
             <input type=\"password\" id=\"password\" name=\"password\">\
             <button type=\"submit\">Log in</button></form></body></html>",
            self.host,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facebook_blocks_webview_logins_only() {
        let fb = Website::facebook();
        // Figure 5: WebView visitors see "Log in Disabled".
        let via_webview = fb.login_page(&ClientContext::webview("com.example.app"));
        assert!(!via_webview.login_possible());
        match via_webview {
            LoginPage::Disabled(doc) => {
                assert!(doc.text_content().contains("Log in Disabled"));
            }
            other => panic!("{other:?}"),
        }
        // Browsers and CTs get the normal form.
        assert!(fb.login_page(&ClientContext::browser()).login_possible());
    }

    #[test]
    fn warn_policy_serves_interstitial_with_consent() {
        let site = Website::new("bank.example", WebViewLoginPolicy::Warn);
        match site.login_page(&ClientContext::webview("kik.android")) {
            LoginPage::Warning(doc) => {
                assert!(doc.get_element_by_id("consent").is_some());
                assert!(doc.text_content().contains("kik.android"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn allow_policy_ignores_the_header() {
        let site = Website::new("blog.example", WebViewLoginPolicy::Allow);
        assert!(site
            .login_page(&ClientContext::webview("com.app"))
            .login_possible());
    }

    #[test]
    fn form_contains_credential_inputs() {
        let site = Website::new("x.example", WebViewLoginPolicy::Allow);
        match site.login_page(&ClientContext::browser()) {
            LoginPage::Form(doc) => {
                assert!(doc.get_element_by_id("username").is_some());
                assert!(doc.get_element_by_id("password").is_some());
            }
            other => panic!("{other:?}"),
        }
    }
}
