//! The Web-API interception layer.
//!
//! The paper's controlled page runs one script that "overrides all methods
//! of all Web APIs … and submits the intercepted requests with parameters
//! back to our server". [`DomSession`] is that layer: every DOM operation
//! flows through it, is recorded locally, and — when a measurement server
//! is attached — reported as a beacon over real loopback HTTP.
//!
//! Interfaces follow the concrete-receiver convention of a prototype-chain
//! override (what the paper's harness sees): `insertBefore` on `<body>`
//! reports as `HTMLBodyElement`, `getAttribute` on `<meta>` reports as
//! `HTMLMetaElement`, and so on — matching the rows of Appendix Table 9.

use crate::dom::{Document, NodeId};
use std::net::SocketAddr;
use wla_net::beacon::encode_beacon;
use wla_net::{fetch, Request};

/// One intercepted API call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiCall {
    /// Interface name as a harness would report it.
    pub interface: String,
    /// Method name.
    pub method: String,
    /// Stringified first argument.
    pub argument: Option<String>,
}

/// An instrumented DOM session for one page visit.
#[derive(Debug)]
pub struct DomSession {
    /// The live document.
    pub doc: Document,
    calls: Vec<ApiCall>,
    reporter: Option<(SocketAddr, String)>,
    /// Registered event listeners (event name, marker).
    listeners: Vec<String>,
}

impl DomSession {
    /// Session without network reporting (local recording only).
    pub fn new(doc: Document) -> DomSession {
        DomSession {
            doc,
            calls: Vec::new(),
            reporter: None,
            listeners: Vec::new(),
        }
    }

    /// Session that reports every call to a measurement server as
    /// `visitor` (the app package, mirroring `X-Requested-With`).
    pub fn with_reporter(doc: Document, server: SocketAddr, visitor: &str) -> DomSession {
        DomSession {
            doc,
            calls: Vec::new(),
            reporter: Some((server, visitor.to_owned())),
            listeners: Vec::new(),
        }
    }

    /// All intercepted calls, in order.
    pub fn calls(&self) -> &[ApiCall] {
        &self.calls
    }

    /// Distinct `(interface, method)` pairs — the unit Table 9 reports.
    pub fn distinct_api_usage(&self) -> Vec<(String, String)> {
        let mut pairs: Vec<(String, String)> = self
            .calls
            .iter()
            .map(|c| (c.interface.clone(), c.method.clone()))
            .collect();
        pairs.sort();
        pairs.dedup();
        pairs
    }

    fn record(&mut self, interface: &str, method: &str, argument: Option<&str>) {
        self.calls.push(ApiCall {
            interface: interface.to_owned(),
            method: method.to_owned(),
            argument: argument.map(str::to_owned),
        });
        if let Some((addr, visitor)) = &self.reporter {
            let body = encode_beacon(interface, method, argument, visitor);
            // Beacons are fire-and-forget in the page too; a lost beacon
            // must not break the page.
            let _ = fetch(*addr, Request::post("/beacon", body.into_bytes()));
        }
    }

    // ---- Document ---------------------------------------------------------

    /// `Document.getElementById`.
    pub fn get_element_by_id(&mut self, id: &str) -> Option<NodeId> {
        self.record("Document", "getElementById", Some(id));
        self.doc.get_element_by_id(id)
    }

    /// `Document.createElement`.
    pub fn create_element(&mut self, tag: &str) -> NodeId {
        self.record("Document", "createElement", Some(tag));
        self.doc.alloc_element(tag)
    }

    /// `Document.querySelectorAll` (returns a NodeList).
    pub fn query_selector_all(&mut self, selector: &str) -> Vec<NodeId> {
        self.record("Document", "querySelectorAll", Some(selector));
        self.doc.query_selector_all(selector)
    }

    /// `HTMLDocument.querySelectorAll` — same operation reported under the
    /// legacy interface some scripts reach it through (Kik, Table 9).
    pub fn html_document_query_selector_all(&mut self, selector: &str) -> Vec<NodeId> {
        self.record("HTMLDocument", "querySelectorAll", Some(selector));
        self.doc.query_selector_all(selector)
    }

    /// `Document.getElementsByTagName` (returns an HTMLCollection).
    pub fn get_elements_by_tag_name(&mut self, tag: &str) -> Vec<NodeId> {
        self.record("Document", "getElementsByTagName", Some(tag));
        self.doc.get_elements_by_tag_name(tag)
    }

    /// `Document.addEventListener`.
    pub fn add_event_listener(&mut self, event: &str) {
        self.record("Document", "addEventListener", Some(event));
        self.listeners.push(event.to_owned());
    }

    /// `Document.removeEventListener`.
    pub fn remove_event_listener(&mut self, event: &str) {
        self.record("Document", "removeEventListener", Some(event));
        if let Some(pos) = self.listeners.iter().position(|e| e == event) {
            self.listeners.remove(pos);
        }
    }

    /// Currently registered listeners (for assertions).
    pub fn listeners(&self) -> &[String] {
        &self.listeners
    }

    // ---- Element family ----------------------------------------------------

    /// `insertBefore` on `parent` — reported as `HTMLBodyElement` when the
    /// receiver is `<body>`, `Element` otherwise.
    pub fn insert_before(&mut self, parent: NodeId, node: NodeId, reference: NodeId) {
        let interface = if self.doc.tag(parent) == Some("body") {
            "HTMLBodyElement"
        } else {
            "Element"
        };
        let arg = self.doc.tag(node).map(str::to_owned);
        self.record(interface, "insertBefore", arg.as_deref());
        self.doc.insert_before(parent, node, reference);
    }

    /// `Element.hasAttribute`.
    pub fn has_attribute(&mut self, el: NodeId, name: &str) -> bool {
        self.record("Element", "hasAttribute", Some(name));
        self.doc.has_attr(el, name)
    }

    /// `getAttribute` — reported as `HTMLMetaElement` on `<meta>` receivers,
    /// `Element` otherwise.
    pub fn get_attribute(&mut self, el: NodeId, name: &str) -> Option<String> {
        let interface = if self.doc.tag(el) == Some("meta") {
            "HTMLMetaElement"
        } else {
            "Element"
        };
        self.record(interface, "getAttribute", Some(name));
        self.doc.get_attr(el, name).map(str::to_owned)
    }

    /// `Element.getElementsByTagName` scoped to a subtree.
    pub fn element_get_elements_by_tag_name(&mut self, el: NodeId, tag: &str) -> Vec<NodeId> {
        self.record("Element", "getElementsByTagName", Some(tag));
        let tag = tag.to_ascii_lowercase();
        // Subtree walk.
        let mut out = Vec::new();
        let mut stack = vec![el];
        while let Some(id) = stack.pop() {
            if id != el {
                if let Some(t) = self.doc.tag(id) {
                    if tag == "*" || t == tag {
                        out.push(id);
                    }
                }
            }
            for &c in self.doc.children(id).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    // ---- Collections --------------------------------------------------------

    /// `HTMLCollection.item`.
    pub fn collection_item(&mut self, collection: &[NodeId], index: usize) -> Option<NodeId> {
        self.record("HTMLCollection", "item", Some(&index.to_string()));
        collection.get(index).copied()
    }

    /// `NodeList.item`.
    pub fn nodelist_item(&mut self, list: &[NodeId], index: usize) -> Option<NodeId> {
        self.record("NodeList", "item", Some(&index.to_string()));
        list.get(index).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::html::parse;

    fn session() -> DomSession {
        DomSession::new(parse(
            "<head><meta name=\"viewport\" content=\"width=device-width\"></head>\
             <body><div id=\"main\"><p>text</p></div><script src=\"a.js\"></script></body>",
        ))
    }

    #[test]
    fn calls_are_recorded_in_order() {
        let mut s = session();
        s.get_element_by_id("main");
        let el = s.create_element("script");
        let body = s.doc.body().unwrap();
        let first = s.doc.children(body)[0];
        s.insert_before(body, el, first);
        let calls = s.calls();
        assert_eq!(calls[0].interface, "Document");
        assert_eq!(calls[0].method, "getElementById");
        assert_eq!(calls[1].method, "createElement");
        assert_eq!(calls[2].interface, "HTMLBodyElement");
        assert_eq!(calls[2].method, "insertBefore");
    }

    #[test]
    fn interface_dispatch_by_receiver() {
        let mut s = session();
        let metas = s.get_elements_by_tag_name("meta");
        let meta = s.collection_item(&metas, 0).unwrap();
        assert_eq!(s.get_attribute(meta, "name").as_deref(), Some("viewport"));
        let div = s.doc.get_element_by_id("main").unwrap();
        s.get_attribute(div, "id");
        let ifaces: Vec<_> = s
            .calls()
            .iter()
            .filter(|c| c.method == "getAttribute")
            .map(|c| c.interface.clone())
            .collect();
        assert_eq!(ifaces, ["HTMLMetaElement", "Element"]);
    }

    #[test]
    fn element_scoped_tag_search() {
        let mut s = session();
        let div = s.doc.get_element_by_id("main").unwrap();
        let ps = s.element_get_elements_by_tag_name(div, "p");
        assert_eq!(ps.len(), 1);
        let all = s.element_get_elements_by_tag_name(div, "*");
        assert_eq!(all.len(), 1); // excludes the receiver itself
    }

    #[test]
    fn listener_bookkeeping() {
        let mut s = session();
        s.add_event_listener("DOMContentLoaded");
        assert_eq!(s.listeners(), ["DOMContentLoaded"]);
        s.remove_event_listener("DOMContentLoaded");
        assert!(s.listeners().is_empty());
    }

    #[test]
    fn distinct_usage_dedupes() {
        let mut s = session();
        s.query_selector_all("*");
        s.query_selector_all("p");
        s.html_document_query_selector_all("meta");
        let usage = s.distinct_api_usage();
        assert_eq!(
            usage,
            vec![
                ("Document".to_owned(), "querySelectorAll".to_owned()),
                ("HTMLDocument".to_owned(), "querySelectorAll".to_owned()),
            ]
        );
    }

    #[test]
    fn beacons_reach_measurement_server() {
        let server = wla_net::MeasurementServer::start(String::new()).unwrap();
        let mut s =
            DomSession::with_reporter(parse("<p id=\"x\">t</p>"), server.addr(), "kik.android");
        s.get_element_by_id("x");
        let records = server.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].interface, "Document");
        assert_eq!(records[0].visitor.as_deref(), Some("kik.android"));
    }
}
