//! Parallel, fault-isolated crawl pipeline on interned endpoint identities.
//!
//! The crawl matrix is `(baseline + selected apps) × sites`. Workers claim
//! batches of visit indices from one atomic counter (the same scheduling
//! discipline as `wla-static`'s pipeline), run each visit on its own
//! [`VisitSession`] behind [`std::panic::catch_unwind`] — a poisoned site
//! becomes a [`CrawlFailure`], never a dead run — and record endpoints as
//! worker-local [`wla_intern::Symbol`]s with a per-host classification
//! memo. The serial join tail merges worker buffers back into matrix
//! order, translates local symbols into one global table with the
//! deterministic input-order remap, and folds Figure 6 through the crawler
//! crate's own row averaging.
//!
//! Determinism contract: for a given `(sites, apps)` input the output is
//! bit-identical at any worker count — records, figures, failure list, and
//! visit counts — because every visit is a pure function of its task, task
//! order is fixed by the matrix, and global symbol ids depend only on the
//! input-order walk. `tests/crawl_equivalence.rs` pins this down.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use wla_crawler::classify::{classify_third_party, is_first_party, EndpointKind};
use wla_crawler::driver::{figure6_row, run_visit_prepared, VisitObservation, BASELINE_APP};
use wla_crawler::sites::{site_page, SiteCategory, TopSite};
use wla_device::iab::{all_profiles, IabProfile};
use wla_device::session::VisitSession;
use wla_device::webview::PreparedPage;
use wla_intern::{Interner, LocalInterner, Symbol, SymbolRemap, SymbolTable, U32BuildHasher};

/// Parallelism knobs for the crawl pipeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrawlConfig {
    /// Worker threads (0 ⇒ one per available core).
    pub workers: usize,
    /// Visit indices claimed per `fetch_add` (0 ⇒ auto-size: enough
    /// batches for ~8 claims per worker, clamped to `1..=32`).
    pub batch: usize,
    /// Allow more worker threads than the host has cores. Off by
    /// default: the crawl is CPU-bound, so surplus threads only add
    /// spawn and scheduling cost without touching the
    /// (worker-count-independent) output. The equivalence tests switch
    /// it on to drive true multi-threaded pools at every worker count
    /// regardless of the host.
    pub oversubscribe: bool,
}

impl CrawlConfig {
    /// Resolve `workers == 0` to the host's available parallelism.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }

    fn effective_batch(&self, visits: usize, workers: usize) -> usize {
        if self.batch > 0 {
            self.batch
        } else {
            visits.div_ceil(workers * 8).clamp(1, 32)
        }
    }
}

/// Why a visit produced no record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CrawlFailureKind {
    /// The visit panicked; `catch_unwind` isolated it.
    VisitPanic,
    /// The visit completed but the pulled netlog was empty — on a real
    /// device, a log that failed to capture.
    EmptyNetlog,
}

impl CrawlFailureKind {
    /// Stable display/aggregation label.
    pub fn label(self) -> &'static str {
        match self {
            CrawlFailureKind::VisitPanic => "visit-panic",
            CrawlFailureKind::EmptyNetlog => "empty-netlog",
        }
    }
}

/// One failed visit, attributed to its matrix cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrawlFailure {
    /// App package (or [`BASELINE_APP`]).
    pub app: String,
    /// Site whose visit failed.
    pub site_host: String,
    /// Failure taxonomy entry.
    pub kind: CrawlFailureKind,
    /// Panic payload text (empty for non-panic kinds).
    pub message: String,
}

/// One completed visit, on interned identities. Hosts are kept in netlog
/// capture order (deterministic per visit); `kinds` is parallel to
/// `hosts`, classified exactly once per distinct host via the worker's
/// memo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VisitRecord {
    /// App package symbol (or [`BASELINE_APP`]).
    pub app: Symbol,
    /// Visited site host symbol.
    pub site: Symbol,
    /// Site category.
    pub category: SiteCategory,
    /// Distinct hosts contacted, in first-contact order.
    pub hosts: Vec<Symbol>,
    /// Endpoint kind per host, parallel to `hosts`.
    pub kinds: Vec<EndpointKind>,
}

/// Per-worker scheduling counters (folded into [`CrawlStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrawlWorkerStats {
    /// Visits this worker executed.
    pub visits: usize,
    /// Batches this worker claimed.
    pub batches: usize,
    /// Wall-clock nanoseconds inside claimed batches.
    pub busy_ns: u64,
}

/// Interner and classification-memo counters, folded across workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrawlInternerCounters {
    /// Summed per-worker lexicon sizes (pre-dedup).
    pub local_symbols: usize,
    /// Summed per-worker lexicon bytes.
    pub local_bytes: usize,
    /// Worker-local intern hits.
    pub local_hits: u64,
    /// Worker-local intern misses.
    pub local_misses: u64,
    /// Distinct symbols in the merged global table.
    pub global_symbols: usize,
    /// Bytes in the merged global table.
    pub global_bytes: usize,
    /// Third-party classifications answered from the per-symbol memo.
    pub classify_hits: u64,
    /// Third-party classifications that ran the suffix-rule tables.
    pub classify_misses: u64,
}

/// Crawl observability: what ran, what failed, where the time went.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CrawlStats {
    /// Visits in the matrix (`rows × sites`).
    pub visits_total: usize,
    /// Visits that produced a record.
    pub visits_completed: usize,
    /// Visits isolated by `catch_unwind`.
    pub visits_panicked: usize,
    /// Matrix rows (baseline + apps).
    pub rows: usize,
    /// Matrix columns.
    pub sites: usize,
    /// Visit indices per claim.
    pub batch: usize,
    /// Script steps executed across completed visits.
    pub steps_executed: u64,
    /// Netlog events captured across completed visits.
    pub requests_logged: u64,
    /// Failure counts by taxonomy label.
    pub failure_kinds: BTreeMap<&'static str, usize>,
    /// Per-worker scheduling counters.
    pub workers: Vec<CrawlWorkerStats>,
    /// Nanoseconds preparing per-site pages (serial, before the pool).
    pub prepare_ns: u64,
    /// Summed worker busy nanoseconds.
    pub visit_ns: u64,
    /// Serial join tail: merge + symbol remap + figure fold.
    pub merge_ns: u64,
    /// End-to-end wall clock.
    pub total_ns: u64,
    /// Interner / classification-memo counters.
    pub interner: CrawlInternerCounters,
}

impl CrawlStats {
    /// Busy fraction of the pool: summed worker busy time over
    /// `workers × wall`. 1.0 means no worker ever starved.
    pub fn utilization(&self) -> f64 {
        let capacity = self.workers.len() as u64 * self.total_ns;
        if capacity == 0 {
            return 0.0;
        }
        self.visit_ns as f64 / capacity as f64
    }

    /// Classification-memo hit rate.
    pub fn classify_hit_rate(&self) -> f64 {
        let total = self.interner.classify_hits + self.interner.classify_misses;
        if total == 0 {
            return 0.0;
        }
        self.interner.classify_hits as f64 / total as f64
    }
}

/// Figure 6 output row (re-exported shape from the crawler crate).
pub use wla_crawler::driver::Figure6Row;

/// Output of the interned crawl pipeline.
#[derive(Debug, Clone)]
pub struct CrawlOutput {
    /// Baseline (System WebView Shell) records, in site order; visits that
    /// failed are absent.
    pub baseline: Vec<VisitRecord>,
    /// Per-app records keyed by display app name, in site order.
    pub per_app: BTreeMap<String, Vec<VisitRecord>>,
    /// Per-app Figure 6 rows (baseline-subtracted), one row per category.
    pub figures: BTreeMap<String, Vec<Figure6Row>>,
    /// Failed visits, in matrix order.
    pub failures: Vec<CrawlFailure>,
    /// Symbol snapshot for display-time host resolution.
    pub symbols: SymbolTable,
    /// Observability counters.
    pub stats: CrawlStats,
}

impl CrawlOutput {
    /// Figure 6 rows for one app.
    pub fn figure_for(&self, app_name: &str) -> Option<&Vec<Figure6Row>> {
        self.figures.get(app_name)
    }

    /// Resolve one record's hosts to strings (display/test helper).
    pub fn resolve_hosts(&self, record: &VisitRecord) -> Vec<&str> {
        record
            .hosts
            .iter()
            .map(|&h| self.symbols.resolve(h))
            .collect()
    }
}

/// Render a panic payload as text.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// What one worker brings back to the merge step.
struct CrawlYield {
    /// `(visit index, outcome)` in claim order (ascending in index).
    results: Vec<(usize, Result<VisitRecord, CrawlFailure>)>,
    stats: CrawlWorkerStats,
    lexicon: LocalInterner,
    steps: u64,
    requests: u64,
    panicked: usize,
    classify_hits: u64,
    classify_misses: u64,
}

/// The full visit matrix for one run.
struct CrawlMatrix<'a> {
    sites: &'a [TopSite],
    pages: Vec<Arc<PreparedPage>>,
    /// `None` = the baseline row; `Some` = an app row.
    rows: Vec<Option<&'a IabProfile>>,
}

impl CrawlMatrix<'_> {
    fn visits(&self) -> usize {
        self.rows.len() * self.sites.len()
    }
}

/// Run the crawl matrix with the given parallelism, using the default
/// prepared-page visit.
pub fn run_crawl_pipeline(
    sites: &[TopSite],
    apps: Option<&[&str]>,
    config: CrawlConfig,
) -> CrawlOutput {
    run_crawl_pipeline_with(sites, apps, config, run_visit_prepared)
}

/// [`run_crawl_pipeline`] with a caller-supplied visit function — the
/// scheduler, fault isolation, and merge are identical. Tests use this to
/// inject deliberately panicking visits; the visit function must drive the
/// page through `session` and return the observation to harvest.
pub fn run_crawl_pipeline_with<F>(
    sites: &[TopSite],
    apps: Option<&[&str]>,
    config: CrawlConfig,
    visit: F,
) -> CrawlOutput
where
    F: Fn(&TopSite, &Arc<PreparedPage>, Option<&IabProfile>, &mut VisitSession) -> VisitObservation
        + Sync,
{
    let started = Instant::now();

    // Prepare every site's page once — parse, subresource resolution, and
    // URL allocation are per-site, not per-visit.
    let prepare_started = Instant::now();
    let profiles = all_profiles();
    let selected: Vec<&IabProfile> = profiles
        .iter()
        .filter(|p| apps.is_none_or(|filter| filter.contains(&p.app_name)))
        .collect();
    let matrix = CrawlMatrix {
        sites,
        pages: sites.iter().map(|s| Arc::new(site_page(s))).collect(),
        rows: std::iter::once(None)
            .chain(selected.iter().map(|p| Some(*p)))
            .collect(),
    };
    let prepare_ns = prepare_started.elapsed().as_nanos() as u64;

    let n = matrix.visits();
    // Never run more threads than the host can execute (unless the
    // caller opts into oversubscription — see [`CrawlConfig`]).
    let cap = if config.oversubscribe {
        usize::MAX
    } else {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    };
    let workers = config.effective_workers().min(cap).min(n.max(1));
    let batch = config.effective_batch(n, workers);
    let next = AtomicUsize::new(0);
    let visit = &visit;
    let matrix_ref = &matrix;

    let worker_body = || {
        let mut y = CrawlYield {
            results: Vec::new(),
            stats: CrawlWorkerStats::default(),
            lexicon: LocalInterner::new(),
            steps: 0,
            requests: 0,
            panicked: 0,
            classify_hits: 0,
            classify_misses: 0,
        };
        // Per-visit distinct-host scratch and the per-host classification
        // memo, both symbol-keyed: strings hash once at intern time.
        let mut seen: HashSet<Symbol, U32BuildHasher> = HashSet::default();
        let mut kind_memo: HashMap<Symbol, EndpointKind, U32BuildHasher> = HashMap::default();
        // URL-identity memo: netlog URLs are `Arc`s shared across visits
        // (prepared subresources, endpoint-rule collect URLs), so the
        // pointer identifies the string and one lookup replaces the
        // host parse + intern. Entries own an `Arc` clone, pinning the
        // allocation so an address is never recycled under a live key.
        let mut host_memo: HostMemo = HashMap::default();
        let n_sites = matrix_ref.sites.len();
        loop {
            let start = next.fetch_add(batch, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + batch).min(n);
            y.stats.batches += 1;
            let claimed = Instant::now();
            for t in start..end {
                let site = &matrix_ref.sites[t % n_sites];
                let page = &matrix_ref.pages[t % n_sites];
                let profile = matrix_ref.rows[t / n_sites];
                let app = profile.map_or(BASELINE_APP, |p| p.package);
                y.stats.visits += 1;
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut session = VisitSession::new();
                    let obs = visit(site, page, profile, &mut session);
                    harvest(
                        site,
                        app,
                        &session,
                        obs,
                        &mut y.lexicon,
                        &mut seen,
                        &mut kind_memo,
                        &mut host_memo,
                        &mut y.classify_hits,
                        &mut y.classify_misses,
                    )
                }));
                let result = match outcome {
                    Ok(Some((record, steps, requests))) => {
                        y.steps += steps;
                        y.requests += requests;
                        Ok(record)
                    }
                    Ok(None) => Err(CrawlFailure {
                        app: app.to_owned(),
                        site_host: site.host.clone(),
                        kind: CrawlFailureKind::EmptyNetlog,
                        message: String::new(),
                    }),
                    Err(payload) => {
                        y.panicked += 1;
                        Err(CrawlFailure {
                            app: app.to_owned(),
                            site_host: site.host.clone(),
                            kind: CrawlFailureKind::VisitPanic,
                            message: panic_message(payload),
                        })
                    }
                };
                y.results.push((t, result));
            }
            y.stats.busy_ns += claimed.elapsed().as_nanos() as u64;
        }
        y
    };

    // workers == 1 runs inline: the serial path has no pool to pay for,
    // which keeps the serial-vs-parallel bench comparison honest.
    let yields: Vec<CrawlYield> = if workers == 1 {
        vec![worker_body()]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers).map(|_| scope.spawn(worker_body)).collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .expect("worker bodies cannot panic: visits are wrapped in catch_unwind")
                })
                .collect()
        })
    };

    join_crawl_yields(matrix_ref, &selected, batch, prepare_ns, started, yields)
}

/// One `host_memo` entry: the resolved host of a shared URL `Arc`. The
/// owned clone keeps the allocation alive so the pointer key stays valid;
/// `host` is the byte range of the host within the URL (`None` for URLs
/// with no extractable host).
struct HostEntry {
    url: Arc<str>,
    host: Option<(Symbol, u32, u32)>,
}

/// Pointer-keyed URL → host memo (see `HostEntry`).
type HostMemo = HashMap<usize, HostEntry, U32BuildHasher>;

/// Turn one completed visit's session into an interned record. Returns
/// `None` when the netlog captured nothing (an [`CrawlFailureKind::EmptyNetlog`]
/// failure at the call site).
#[allow(clippy::too_many_arguments)]
fn harvest(
    site: &TopSite,
    app: &str,
    session: &VisitSession,
    obs: VisitObservation,
    lexicon: &mut LocalInterner,
    seen: &mut HashSet<Symbol, U32BuildHasher>,
    kind_memo: &mut HashMap<Symbol, EndpointKind, U32BuildHasher>,
    host_memo: &mut HostMemo,
    classify_hits: &mut u64,
    classify_misses: &mut u64,
) -> Option<(VisitRecord, u64, u64)> {
    let requests = session.requests_logged() as u64;
    if requests == 0 {
        return None;
    }
    let app_sym = lexicon.intern(app);
    let site_sym = lexicon.intern(&site.host);
    seen.clear();
    let mut hosts = Vec::new();
    let mut kinds = Vec::new();
    session.netlog().for_each_request_url(obs.source_id, |url| {
        // Memo misses happen at each unique URL's first appearance, so
        // the local interner sees hosts in exactly the first-occurrence
        // order the per-event string path produced — symbol assignment,
        // and with it the merged output, is unchanged.
        let entry = host_memo
            .entry(Arc::as_ptr(url) as *const u8 as usize)
            .or_insert_with(|| HostEntry {
                url: url.clone(),
                host: wla_net::netlog::host_of(url).map(|h| {
                    let start = h.as_ptr() as usize - url.as_ptr() as usize;
                    (lexicon.intern(h), start as u32, h.len() as u32)
                }),
            });
        let Some((sym, start, len)) = entry.host else {
            return;
        };
        if seen.insert(sym) {
            let host = &entry.url[start as usize..(start + len) as usize];
            let kind = if is_first_party(host, &site.host) {
                EndpointKind::FirstParty
            } else if let Some(&k) = kind_memo.get(&sym) {
                *classify_hits += 1;
                k
            } else {
                *classify_misses += 1;
                let k = classify_third_party(host);
                kind_memo.insert(sym, k);
                k
            };
            hosts.push(sym);
            kinds.push(kind);
        }
    });
    Some((
        VisitRecord {
            app: app_sym,
            site: site_sym,
            category: site.category,
            hosts,
            kinds,
        },
        obs.steps as u64,
        requests,
    ))
}

/// The serial join tail: merge worker buffers into matrix order, fold the
/// stats, translate worker-local symbols through the deterministic
/// input-order remap, and build the baseline-subtracted figures.
fn join_crawl_yields(
    matrix: &CrawlMatrix<'_>,
    selected: &[&IabProfile],
    batch: usize,
    prepare_ns: u64,
    started: Instant,
    yields: Vec<CrawlYield>,
) -> CrawlOutput {
    let tail_started = Instant::now();
    let n = matrix.visits();
    let n_sites = matrix.sites.len();

    let mut merged: Vec<(usize, u32, Result<VisitRecord, CrawlFailure>)> = Vec::with_capacity(n);
    let mut stats = CrawlStats {
        visits_total: n,
        rows: matrix.rows.len(),
        sites: n_sites,
        batch,
        prepare_ns,
        ..CrawlStats::default()
    };
    let mut lexicons: Vec<LocalInterner> = Vec::with_capacity(yields.len());
    for (w, y) in yields.into_iter().enumerate() {
        merged.extend(y.results.into_iter().map(|(i, r)| (i, w as u32, r)));
        stats.visits_panicked += y.panicked;
        stats.steps_executed += y.steps;
        stats.requests_logged += y.requests;
        stats.visit_ns += y.stats.busy_ns;
        stats.workers.push(y.stats);
        stats.interner.local_symbols += y.lexicon.len();
        stats.interner.local_bytes += y.lexicon.bytes();
        stats.interner.local_hits += y.lexicon.hits();
        stats.interner.local_misses += y.lexicon.misses();
        stats.interner.classify_hits += y.classify_hits;
        stats.interner.classify_misses += y.classify_misses;
        lexicons.push(y.lexicon);
    }
    merged.sort_unstable_by_key(|&(i, _, _)| i);
    assert_eq!(merged.len(), n, "batch claiming covers every visit");
    debug_assert!(
        merged.iter().enumerate().all(|(pos, &(i, _, _))| pos == i),
        "batch claiming covers every visit exactly once"
    );

    // Three-phase local→global symbol translation, in matrix order — the
    // same schedule-independent id assignment as `wla-static`'s join:
    // record first occurrences per worker, batch-intern them in rank
    // order, rewrite every record.
    let interner = Interner::with_capacity(stats.interner.local_symbols);
    let mut ranks: Vec<Vec<u32>> = lexicons.iter().map(|l| vec![u32::MAX; l.len()]).collect();
    let mut order: Vec<(u32, Symbol)> = Vec::new();
    {
        let mut note = |w: u32, sym: Symbol, ranks: &mut Vec<Vec<u32>>| {
            let rank = &mut ranks[w as usize];
            if rank[sym.0 as usize] == u32::MAX {
                rank[sym.0 as usize] = order.len() as u32;
                order.push((w, sym));
            }
        };
        for (_, w, result) in merged.iter() {
            if let Ok(record) = result {
                note(*w, record.app, &mut ranks);
                note(*w, record.site, &mut ranks);
                for &h in &record.hosts {
                    note(*w, h, &mut ranks);
                }
            }
        }
    }
    let arcs: Vec<Arc<str>> = order
        .iter()
        .map(|&(w, sym)| lexicons[w as usize].resolve_arc(sym))
        .collect();
    let globals = interner.intern_ordered(&arcs);
    let mut remaps: Vec<SymbolRemap> = lexicons.iter().map(|l| SymbolRemap::new(l.len())).collect();
    for (rank, &(w, sym)) in order.iter().enumerate() {
        remaps[w as usize].set(sym, globals[rank]);
    }
    stats.interner.global_symbols = interner.len();
    stats.interner.global_bytes = interner.bytes();

    // Rewrite records into the global namespace and split the matrix back
    // into rows. `cells[r][s]` is the (possibly failed) visit of site `s`
    // through row `r`.
    let mut cells: Vec<Vec<Option<VisitRecord>>> = matrix
        .rows
        .iter()
        .map(|_| (0..n_sites).map(|_| None).collect())
        .collect();
    let mut failures = Vec::new();
    for (i, w, result) in merged {
        match result {
            Ok(mut record) => {
                let remap = &remaps[w as usize];
                let translate = |sym: Symbol| remap.get(sym).expect("noted during phase A");
                record.app = translate(record.app);
                record.site = translate(record.site);
                for h in &mut record.hosts {
                    *h = translate(*h);
                }
                cells[i / n_sites][i % n_sites] = Some(record);
            }
            Err(failure) => {
                *stats.failure_kinds.entry(failure.kind.label()).or_insert(0) += 1;
                failures.push(failure);
            }
        }
    }
    stats.visits_completed = n - failures.len();

    // Baseline host sets per site, for figure subtraction.
    let baseline_sets: Vec<Option<HashSet<Symbol, U32BuildHasher>>> = cells[0]
        .iter()
        .map(|cell| cell.as_ref().map(|rec| rec.hosts.iter().copied().collect()))
        .collect();

    let mut per_app = BTreeMap::new();
    let mut figures = BTreeMap::new();
    for (row, profile) in selected.iter().enumerate() {
        let records: Vec<VisitRecord> = cells[row + 1].iter().flatten().cloned().collect();
        figures.insert(
            profile.app_name.to_owned(),
            figure6_interned(&cells[row + 1], &baseline_sets, matrix.sites),
        );
        per_app.insert(profile.app_name.to_owned(), records);
    }
    let baseline: Vec<VisitRecord> = cells[0].iter().flatten().cloned().collect();

    stats.merge_ns = tail_started.elapsed().as_nanos() as u64;
    stats.total_ns = started.elapsed().as_nanos() as u64;
    CrawlOutput {
        baseline,
        per_app,
        figures,
        failures,
        symbols: interner.snapshot(),
        stats,
    }
}

/// Figure 6 over interned records: tally each visit's baseline-subtracted
/// endpoint kinds, then fold through the crawler crate's
/// [`figure6_row`] — identical accumulation order to the string-path
/// oracle, hence bit-identical averages. Visits whose baseline is missing
/// (site failed in the shell row) are skipped, mirroring the oracle's
/// behavior for sites absent from the baseline.
fn figure6_interned(
    row: &[Option<VisitRecord>],
    baseline_sets: &[Option<HashSet<Symbol, U32BuildHasher>>],
    sites: &[TopSite],
) -> Vec<Figure6Row> {
    let mut per_cat: BTreeMap<SiteCategory, Vec<BTreeMap<EndpointKind, usize>>> =
        SiteCategory::ALL.iter().map(|&c| (c, Vec::new())).collect();
    for (s, cell) in row.iter().enumerate() {
        let (Some(record), Some(base)) = (cell, &baseline_sets[s]) else {
            continue;
        };
        let mut kinds: BTreeMap<EndpointKind, usize> = BTreeMap::new();
        for (h, k) in record.hosts.iter().zip(&record.kinds) {
            if !base.contains(h) {
                *kinds.entry(*k).or_insert(0) += 1;
            }
        }
        per_cat
            .get_mut(&sites[s].category)
            .expect("ALL covers every category")
            .push(kinds);
    }
    per_cat
        .into_iter()
        .map(|(category, visits)| figure6_row(category, &visits))
        .collect()
}
