//! # wla-dynamic — the paper's §3.2 semi-manual dynamic analysis
//!
//! Three studies over the top-1K apps on the simulated device:
//!
//! * [`classify`] — Table 6: for each top-1K app, attempt to access the
//!   app (gates: phone-number registration, incompatibility, paywalls),
//!   find a UGC surface, post `https://example.com`, tap it, and *observe*
//!   what opens (Web URI intent → browser, WebView IAB, or CT IAB);
//! * [`iab_study`] — Tables 8 & 9: drive each WebView-IAB app through a
//!   visit to the controlled page served over real loopback HTTP with all
//!   WebView methods hooked; collect injections, bridges, redirectors,
//!   Web-API beacons, and infer the intent of each injection;
//! * [`crawl_study`] — Figures 6a/6b: the 100-top-site crawl through each
//!   IAB with System-WebView-Shell baseline subtraction.

pub mod classify;
pub mod crawl_pipeline;
pub mod crawl_study;
pub mod iab_study;

pub use classify::{
    classify_app, classify_app_with_settings, classify_top_apps, ClassificationOutcome,
    LinkSettings, Table6Counts,
};
pub use crawl_pipeline::{
    run_crawl_pipeline, run_crawl_pipeline_with, CrawlConfig, CrawlFailure, CrawlFailureKind,
    CrawlOutput, CrawlStats, VisitRecord,
};
pub use crawl_study::{run_crawl_study, run_crawl_study_parallel, CrawlStudy};
pub use iab_study::{run_iab_study, IabAppReport, IabStudy};
