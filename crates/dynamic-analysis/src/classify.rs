//! Top-1K hyperlink-click classification — Table 6.
//!
//! The paper installs each app on a Pixel, creates dummy accounts where
//! needed, finds surfaces with user-generated links, posts
//! `https://example.com`, and follows it. The classifier here does the
//! same against the simulated device: every verdict comes from *observing*
//! the tap (which runtime surface opened, what logcat shows), not from
//! reading the ground-truth spec directly.

use std::collections::BTreeMap;
use wla_corpus::ecosystem::{AccessGate, LinkBehavior, TopAppSpec};
use wla_device::browser::Browser;
use wla_device::customtabs::CustomTab;
use wla_device::iab::{open_in_iab, profile_for, IabProfile};
use wla_device::intent::{resolve_intent, Intent, IntentTarget};
use wla_device::webview::PageSource;
use wla_device::{FridaRecorder, Logcat};
use wla_net::{NetLog, NetLogPhase};

/// The probe URL the paper submits.
pub const PROBE_URL: &str = "https://example.com";

/// What the analyst observed for one app.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassificationOutcome {
    /// Link opened in the default browser (a Web URI intent was raised).
    OpensInBrowser,
    /// Link opened in a WebView-based IAB (no intent; WebView activity).
    OpensInWebViewIab,
    /// Link opened in a Custom Tab.
    OpensInCustomTab,
    /// No surface with user-posted links exists.
    NoUserLinks,
    /// The app itself is a browser.
    BrowserApp,
    /// Could not classify (with the blocking gate).
    Unclassifiable(AccessGate),
}

/// Simulate tapping the probe link inside `app`, returning what the
/// analyst observes. The app's runtime behaviour (IAB vs intent) comes
/// from executing the corresponding device path and leaves real traces in
/// `logcat`/`netlog`; the observation is derived from those traces.
fn tap_link(
    app: &TopAppSpec,
    browser: &mut Browser,
    netlog: &NetLog,
    logcat: &Logcat,
    source_id: u32,
) -> ClassificationOutcome {
    match app.link_behavior {
        LinkBehavior::OpensBrowser => {
            // The app raises a Web URI intent; Android resolves it.
            let intent = Intent::view(PROBE_URL);
            logcat.info(
                "ActivityManager",
                &format!("START u0 {{act=android.intent.action.VIEW dat={PROBE_URL}}}"),
            );
            match resolve_intent(&intent, &[]) {
                IntentTarget::DefaultBrowser => {
                    let tab_source = browser.allocate_source();
                    browser
                        .netlog
                        .record(tab_source, PROBE_URL, NetLogPhase::RequestSent);
                }
                other => {
                    logcat.info("ActivityManager", &format!("resolved to {other:?}"));
                }
            }
        }
        LinkBehavior::OpensWebViewIab => {
            // The app intercepts the tap: no VIEW intent in logcat.
            let profile = profile_for(&app.package).unwrap_or_else(|| generic_iab(&app.package));
            let _ = open_in_iab(
                &profile,
                source_id,
                PageSource::Synthetic {
                    url: PROBE_URL.to_owned(),
                    html: "<html><body><h1>Example Domain</h1></body></html>".into(),
                    extra_requests: vec![],
                },
                0,
                FridaRecorder::new(),
                netlog.clone(),
                logcat.clone(),
                None,
            );
        }
        LinkBehavior::OpensCustomTab => {
            let _ = CustomTab::launch(browser, PROBE_URL, "<h1>Example Domain</h1>");
        }
    }

    // --- Observation phase: what did the device traces show? ---
    let intent_raised = logcat.contains("act=android.intent.action.VIEW");
    let iab_activity = logcat.contains(".IabActivity");
    let app_webview_loaded = !netlog.events_for(source_id).is_empty();
    let browser_tab_loaded = netlog
        .events()
        .iter()
        .any(|e| e.source_id >= 1_000 && e.url.starts_with(PROBE_URL));

    if intent_raised && browser_tab_loaded {
        ClassificationOutcome::OpensInBrowser
    } else if iab_activity || app_webview_loaded {
        ClassificationOutcome::OpensInWebViewIab
    } else if browser_tab_loaded {
        // Browser context without an intent: a Custom Tab.
        ClassificationOutcome::OpensInCustomTab
    } else {
        // Nothing observable happened; treat as browser default.
        ClassificationOutcome::OpensInBrowser
    }
}

/// A generic WebView IAB for link-intercepting apps without a named
/// Table 8 profile.
fn generic_iab(package: &str) -> IabProfile {
    IabProfile {
        app_name: "generic",
        package: Box::leak(package.to_owned().into_boxed_str()),
        surface: "Post",
        redirector: None,
        bridges: vec![],
        obfuscated_bridge: false,
        scripts: vec![],
        endpoint_rules: vec![],
        collect_urls: Vec::new(),
    }
}

/// User-controlled device/app settings affecting link handling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkSettings {
    /// "Disable in-app browsers" — the opt-out §5 notes some apps offer
    /// (and recommends making opt-in). When set, apps that would open a
    /// WebView IAB raise a Web URI intent instead.
    pub disable_in_app_browsers: bool,
}

/// Classify one app under explicit settings.
pub fn classify_app_with_settings(
    app: &TopAppSpec,
    source_id: u32,
    settings: LinkSettings,
) -> ClassificationOutcome {
    // Installation / account-creation gates first.
    if let Some(gate) = app.gate {
        return ClassificationOutcome::Unclassifiable(gate);
    }
    if app.is_browser {
        return ClassificationOutcome::BrowserApp;
    }
    if app.ugc.is_none() {
        return ClassificationOutcome::NoUserLinks;
    }
    let mut effective = app.clone();
    if settings.disable_in_app_browsers && effective.link_behavior == LinkBehavior::OpensWebViewIab
    {
        effective.link_behavior = LinkBehavior::OpensBrowser;
    }
    let netlog = NetLog::new();
    let logcat = Logcat::new();
    let mut browser = Browser::new(netlog.clone());
    tap_link(&effective, &mut browser, &netlog, &logcat, source_id)
}

/// Classify one app with default settings.
pub fn classify_app(app: &TopAppSpec, source_id: u32) -> ClassificationOutcome {
    classify_app_with_settings(app, source_id, LinkSettings::default())
}

/// Table 6's row counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table6Counts {
    /// Users can post links.
    pub can_post_links: usize,
    /// …of which: link opens in browser.
    pub opens_browser: usize,
    /// …of which: link opens in a WebView IAB.
    pub opens_webview: usize,
    /// …of which: link opens in a CT.
    pub opens_ct: usize,
    /// Users cannot post links.
    pub no_user_links: usize,
    /// Browser apps.
    pub browser_apps: usize,
    /// Could not classify.
    pub unclassifiable: usize,
    /// …of which: required a phone number.
    pub required_phone: usize,
    /// …of which: app incompatibility.
    pub incompatible: usize,
    /// …of which: required a paid account.
    pub required_paid: usize,
}

/// Classify the whole top-1K population and tally Table 6. Also returns
/// per-app outcomes for downstream selection of the WebView-IAB set.
pub fn classify_top_apps(
    apps: &[TopAppSpec],
) -> (Table6Counts, BTreeMap<String, ClassificationOutcome>) {
    let mut counts = Table6Counts::default();
    let mut outcomes = BTreeMap::new();
    for (i, app) in apps.iter().enumerate() {
        let outcome = classify_app(app, i as u32 + 1);
        match &outcome {
            ClassificationOutcome::OpensInBrowser => {
                counts.can_post_links += 1;
                counts.opens_browser += 1;
            }
            ClassificationOutcome::OpensInWebViewIab => {
                counts.can_post_links += 1;
                counts.opens_webview += 1;
            }
            ClassificationOutcome::OpensInCustomTab => {
                counts.can_post_links += 1;
                counts.opens_ct += 1;
            }
            ClassificationOutcome::NoUserLinks => counts.no_user_links += 1,
            ClassificationOutcome::BrowserApp => counts.browser_apps += 1,
            ClassificationOutcome::Unclassifiable(gate) => {
                counts.unclassifiable += 1;
                match gate {
                    AccessGate::PhoneNumber => counts.required_phone += 1,
                    AccessGate::Incompatible => counts.incompatible += 1,
                    AccessGate::PaidAccount => counts.required_paid += 1,
                }
            }
        }
        outcomes.insert(app.package.clone(), outcome);
    }
    (counts, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wla_corpus::ecosystem::top_thousand;

    #[test]
    fn table6_counts_match_paper() {
        let apps = top_thousand(1234);
        let (counts, outcomes) = classify_top_apps(&apps);
        assert_eq!(counts.can_post_links, 38);
        assert_eq!(counts.opens_browser, 27);
        assert_eq!(counts.opens_webview, 10);
        assert_eq!(counts.opens_ct, 1);
        assert_eq!(counts.no_user_links, 905);
        assert_eq!(counts.browser_apps, 9);
        assert_eq!(counts.unclassifiable, 48);
        assert_eq!(counts.required_phone, 24);
        assert_eq!(counts.incompatible, 22);
        assert_eq!(counts.required_paid, 2);
        assert_eq!(outcomes.len(), 1_000);
    }

    #[test]
    fn facebook_observed_as_webview_iab() {
        let apps = top_thousand(5);
        let fb = apps
            .iter()
            .find(|a| a.package == "com.facebook.katana")
            .unwrap();
        assert_eq!(
            classify_app(fb, 99),
            ClassificationOutcome::OpensInWebViewIab
        );
    }

    #[test]
    fn discord_observed_as_custom_tab() {
        let apps = top_thousand(5);
        let discord = apps.iter().find(|a| a.package == "com.discord").unwrap();
        assert_eq!(
            classify_app(discord, 99),
            ClassificationOutcome::OpensInCustomTab
        );
    }

    #[test]
    fn browser_opener_observed_via_intent() {
        let apps = top_thousand(5);
        let opener = apps
            .iter()
            .find(|a| a.ugc.is_some() && a.link_behavior == LinkBehavior::OpensBrowser)
            .unwrap();
        assert_eq!(
            classify_app(opener, 99),
            ClassificationOutcome::OpensInBrowser
        );
    }

    #[test]
    fn gates_block_classification() {
        let apps = top_thousand(5);
        let gated = apps.iter().find(|a| a.gate.is_some()).unwrap();
        assert!(matches!(
            classify_app(gated, 99),
            ClassificationOutcome::Unclassifiable(_)
        ));
    }
}

#[cfg(test)]
mod settings_tests {
    use super::*;
    use wla_corpus::ecosystem::top_thousand;

    #[test]
    fn disabling_iabs_reroutes_webview_apps_to_the_browser() {
        let apps = top_thousand(7);
        let fb = apps
            .iter()
            .find(|a| a.package == "com.facebook.katana")
            .unwrap();
        let settings = LinkSettings {
            disable_in_app_browsers: true,
        };
        assert_eq!(
            classify_app_with_settings(fb, 1, settings),
            ClassificationOutcome::OpensInBrowser
        );
        // Without the opt-out, the IAB opens.
        assert_eq!(
            classify_app(fb, 2),
            ClassificationOutcome::OpensInWebViewIab
        );
        // The CT app is unaffected (CTs are not the privacy problem).
        let discord = apps.iter().find(|a| a.package == "com.discord").unwrap();
        assert_eq!(
            classify_app_with_settings(discord, 3, settings),
            ClassificationOutcome::OpensInCustomTab
        );
    }
}
