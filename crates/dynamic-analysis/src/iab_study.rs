//! The WebView-IAB instrumentation study — Tables 8 and 9.
//!
//! For each of the ten WebView-IAB apps: hook every WebView method
//! (Frida analog), navigate the IAB to the controlled page served by the
//! measurement server over real loopback HTTP, record the Web-API beacons
//! the instrumented page sends back, capture the netlog, and infer the
//! intent of each injection from the observed behaviour.

use std::collections::BTreeSet;
use wla_device::iab::{all_profiles, open_in_iab, IabProfile};
use wla_device::webview::PageSource;
use wla_device::{FridaRecorder, HookedCall, Logcat};
use wla_net::{MeasurementServer, NetLog};
use wla_web::script::ScriptOutcome;
use wla_web::testpage::test_page_html;

/// The study's report for one app (one Table 8 row + its Table 9 rows).
#[derive(Debug, Clone)]
pub struct IabAppReport {
    /// App name.
    pub app_name: String,
    /// Package.
    pub package: String,
    /// UGC surface ("WebView Via" column).
    pub surface: String,
    /// Whether any JS was injected (beyond loading the URL).
    pub injects_js: bool,
    /// Whether any JS bridge was injected.
    pub injects_bridge: bool,
    /// Bridge names observed via the `addJavascriptInterface` hook.
    pub bridges: Vec<String>,
    /// Whether the bridge class was obfuscated.
    pub obfuscated_bridge: bool,
    /// Inferred intents for the injected content (Table 8's last columns).
    pub inferred_intents: Vec<String>,
    /// Distinct `(interface, method)` Web-API pairs the measurement server
    /// recorded for this app (Table 9).
    pub web_api_usage: Vec<(String, String)>,
    /// Redirector URL observed, if any.
    pub redirector: Option<String>,
    /// Distinct hosts the IAB contacted during the controlled visit.
    pub hosts: BTreeSet<String>,
    /// Raw hooked WebView calls.
    pub hooked_calls: Vec<HookedCall>,
}

/// The full study output.
#[derive(Debug, Clone)]
pub struct IabStudy {
    /// One report per app, in Table 8 order (by downloads, descending).
    pub reports: Vec<IabAppReport>,
}

impl IabStudy {
    /// Report lookup by app name.
    pub fn report(&self, app_name: &str) -> Option<&IabAppReport> {
        self.reports.iter().find(|r| r.app_name == app_name)
    }
}

/// Infer the intent of injected content from observed outcomes and hook
/// data — the analysis the paper performs manually with logcat and remote
/// debugging (§4.2.1–§4.2.4).
fn infer_intents(profile: &IabProfile, outcomes: &[ScriptOutcome]) -> Vec<String> {
    let mut intents = Vec::new();
    for outcome in outcomes {
        match outcome {
            ScriptOutcome::ScriptInserted { src, .. } => {
                if src.contains("autofill") {
                    intents.push(
                        "Insert FB Autofill SDK JS script (populates merchant checkouts)".into(),
                    );
                } else {
                    intents.push(format!("Insert JS script: {src}"));
                }
            }
            ScriptOutcome::TagCounts(_) => intents.push("Returns DOM tag counts".into()),
            ScriptOutcome::SimHashes { .. } => {
                intents.push("Returns simHash for page to detect cloaking".into())
            }
            ScriptOutcome::Performance { .. } => intents.push("Logs performance metrics".into()),
            ScriptOutcome::AdResult {
                displayed,
                not_visible_reason,
            } => {
                let detail = if *displayed {
                    "ad displayed".to_owned()
                } else {
                    format!(
                        "no ad displayed ({})",
                        not_visible_reason.as_deref().unwrap_or("unknown")
                    )
                };
                intents.push(format!(
                    "Insert and manage a video ad via Google Ads SDK ({detail})"
                ));
            }
            ScriptOutcome::ScanResult { .. } => {
                if profile.app_name == "Kik" {
                    intents.push("Scan page for ad slots (ad networks: MoPub, InMobi)".into());
                } else if profile.app_name == "LinkedIn" {
                    intents.push("Calls to Cedexis traffic management API".into());
                } else {
                    intents.push("Read-only page scan".into());
                }
            }
        }
    }
    if intents.is_empty() {
        intents.push("No injection".into());
    }
    intents
}

/// Run the controlled-page visit for one profile.
pub fn study_app(profile: &IabProfile, source_id: u32) -> IabAppReport {
    let mut server = MeasurementServer::start(test_page_html()).expect("measurement server");
    let recorder = FridaRecorder::new();
    let netlog = NetLog::new();
    let logcat = Logcat::new();

    let visit = open_in_iab(
        profile,
        source_id,
        PageSource::Http {
            server: server.addr(),
            path: "/page".into(),
            url: "https://measurement.wla.example/page".into(),
        },
        0, // the controlled page is deliberately plain
        recorder.clone(),
        netlog.clone(),
        logcat.clone(),
        Some(server.addr()),
    );

    // Table 9: distinct Web-API pairs recorded server-side.
    let mut web_api_usage: Vec<(String, String)> = server
        .records()
        .iter()
        .map(|r| (r.interface.clone(), r.method.clone()))
        .collect();
    web_api_usage.sort();
    web_api_usage.dedup();

    let bridges: Vec<String> = visit.webview.bridges().to_vec();
    let hooked_calls = recorder.calls();
    let injects_js = hooked_calls.iter().any(|c| {
        c.method == "evaluateJavascript"
            || (c.method == "loadUrl" && c.args.iter().any(|a| a.starts_with("javascript:")))
    });

    let report = IabAppReport {
        app_name: profile.app_name.to_owned(),
        package: profile.package.to_owned(),
        surface: profile.surface.to_owned(),
        injects_js,
        injects_bridge: !bridges.is_empty(),
        bridges,
        obfuscated_bridge: profile.obfuscated_bridge,
        inferred_intents: infer_intents(profile, &visit.outcomes),
        web_api_usage,
        redirector: visit.redirector_url,
        hosts: netlog.distinct_hosts_for(source_id),
        hooked_calls,
    };
    server.shutdown();
    report
}

/// Run the full ten-app study.
pub fn run_iab_study() -> IabStudy {
    let reports = all_profiles()
        .iter()
        .enumerate()
        .map(|(i, p)| study_app(p, i as u32 + 1))
        .collect();
    IabStudy { reports }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_reports() {
        let study = run_iab_study();
        assert_eq!(study.reports.len(), 10);
    }

    #[test]
    fn facebook_report_matches_table8_and_table9() {
        let study = run_iab_study();
        let fb = study.report("Facebook").unwrap();
        assert!(fb.injects_js && fb.injects_bridge);
        assert_eq!(
            fb.bridges,
            [
                "fbpayIAWBridge",
                "metaCheckoutIAWBridge",
                "_AutofillExtensions"
            ]
        );
        // Inferred intents cover the four injections.
        let all = fb.inferred_intents.join("; ");
        assert!(all.contains("Autofill"), "{all}");
        assert!(all.contains("DOM tag counts"), "{all}");
        assert!(all.contains("simHash"), "{all}");
        assert!(all.contains("performance"), "{all}");
        // Table 9 row: every expected (interface, method) pair observed,
        // via real HTTP beacons.
        for (iface, method) in [
            ("Document", "getElementById"),
            ("Document", "createElement"),
            ("Document", "querySelectorAll"),
            ("Document", "getElementsByTagName"),
            ("Document", "addEventListener"),
            ("Document", "removeEventListener"),
            ("Element", "insertBefore"),
            ("Element", "hasAttribute"),
            ("Element", "getElementsByTagName"),
            ("HTMLBodyElement", "insertBefore"),
            ("HTMLCollection", "item"),
            ("NodeList", "item"),
            ("HTMLMetaElement", "getAttribute"),
        ] {
            assert!(
                fb.web_api_usage
                    .contains(&(iface.to_owned(), method.to_owned())),
                "missing {iface}.{method}: {:?}",
                fb.web_api_usage
            );
        }
        // Redirector observed.
        assert!(fb
            .redirector
            .as_deref()
            .unwrap()
            .contains("lm.facebook.com"));
    }

    #[test]
    fn instagram_matches_facebook_behaviour() {
        // "Facebook and Instagram exhibited identical behavior" (§4.2).
        let study = run_iab_study();
        let fb = study.report("Facebook").unwrap();
        let ig = study.report("Instagram").unwrap();
        assert_eq!(fb.web_api_usage, ig.web_api_usage);
        assert_eq!(fb.bridges, ig.bridges);
    }

    #[test]
    fn no_injection_apps_are_clean() {
        let study = run_iab_study();
        for app in ["Snapchat", "Twitter", "Reddit"] {
            let r = study.report(app).unwrap();
            assert!(!r.injects_js, "{app}");
            assert!(!r.injects_bridge, "{app}");
            assert!(r.web_api_usage.is_empty(), "{app}: {:?}", r.web_api_usage);
            assert_eq!(r.inferred_intents, ["No injection"], "{app}");
        }
    }

    #[test]
    fn kik_uses_only_read_only_apis() {
        let study = run_iab_study();
        let kik = study.report("Kik").unwrap();
        // Table 9's Kik row, exactly.
        assert_eq!(
            kik.web_api_usage,
            vec![
                ("Document".to_owned(), "querySelectorAll".to_owned()),
                ("HTMLDocument".to_owned(), "querySelectorAll".to_owned()),
                ("HTMLMetaElement".to_owned(), "getAttribute".to_owned()),
            ]
        );
        assert!(kik.bridges.contains(&"googleAdsJsInterface".to_owned()));
    }

    #[test]
    fn moj_and_chingari_record_no_web_api_usage() {
        // "we did not observe any ads on our test page, nor did our server
        // record any Web API usage" (§4.2.3).
        let study = run_iab_study();
        for app in ["Moj", "Chingari"] {
            let r = study.report(app).unwrap();
            assert!(r.web_api_usage.is_empty(), "{app}: {:?}", r.web_api_usage);
            assert!(r.injects_js, "{app} still injects (obfuscated) JS");
            let intents = r.inferred_intents.join("; ");
            assert!(intents.contains("noAdView"), "{intents}");
        }
    }

    #[test]
    fn pinterest_bridge_is_obfuscated() {
        let study = run_iab_study();
        let p = study.report("Pinterest").unwrap();
        assert!(p.injects_bridge && p.obfuscated_bridge);
        assert!(!p.injects_js);
    }

    #[test]
    fn twitter_uses_tco_redirector() {
        let study = run_iab_study();
        let t = study.report("Twitter").unwrap();
        assert!(t.redirector.as_deref().unwrap().contains("t.co"));
    }
}
