//! The 100-top-site crawl study — Figures 6a and 6b.
//!
//! Crawls the synthetic top-100 list through each WebView-IAB app plus the
//! System WebView Shell baseline, and aggregates the IAB-specific distinct
//! endpoints per site category. Since the move to the interned pipeline in
//! [`crate::crawl_pipeline`], the study output carries symbol-keyed
//! records plus the symbol table to resolve them, and [`CrawlStats`]
//! observability; the figures keep their string-era shape (and values —
//! the pipeline folds them through the crawler crate's own row averaging,
//! so they are bit-identical to the serial string-path oracle).

use crate::crawl_pipeline::{run_crawl_pipeline, CrawlConfig, CrawlOutput};
use wla_crawler::sites::TopSite;

pub use crate::crawl_pipeline::{CrawlFailure, CrawlFailureKind, CrawlStats, VisitRecord};

/// The crawl study output (the interned pipeline's output, re-exported
/// under the study's historical name).
pub type CrawlStudy = CrawlOutput;

/// Run the full crawl study serially over `sites` (pass `None` for the
/// paper's 100-site configuration) for the given app names (`None` = all
/// ten). One worker, inline — this is the oracle the parallel runs are
/// equivalence-tested against.
pub fn run_crawl_study(sites: Option<Vec<TopSite>>, apps: Option<&[&str]>) -> CrawlStudy {
    run_crawl_study_parallel(
        sites,
        apps,
        CrawlConfig {
            workers: 1,
            ..CrawlConfig::default()
        },
    )
}

/// [`run_crawl_study`] with explicit parallelism. Output is bit-identical
/// to the serial run at any worker count.
pub fn run_crawl_study_parallel(
    sites: Option<Vec<TopSite>>,
    apps: Option<&[&str]>,
    config: CrawlConfig,
) -> CrawlStudy {
    let sites = sites.unwrap_or_else(wla_crawler::sites::top_100_sites);
    run_crawl_pipeline(&sites, apps, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use wla_crawler::sites::SiteCategory;

    #[test]
    fn linkedin_and_kik_figures_present() {
        let study = run_crawl_study(None, Some(&["LinkedIn", "Kik"]));
        assert_eq!(study.figures.len(), 2);
        let li = study.figures.get("LinkedIn").unwrap();
        let kik = study.figures.get("Kik").unwrap();
        assert_eq!(li.len(), 10); // one row per site category
        assert_eq!(kik.len(), 10);
        // Every visit completed and was observed.
        assert_eq!(study.stats.visits_total, 3 * 100);
        assert_eq!(study.stats.visits_completed, 3 * 100);
        assert_eq!(study.stats.visits_panicked, 0);
        assert!(study.failures.is_empty());
    }

    #[test]
    fn endpoints_isolated_to_the_iab() {
        // "These endpoints were specific to LinkedIn's IAB and were not
        // contacted by any other app's IAB" (§4.2.2).
        let study = run_crawl_study(None, Some(&["LinkedIn", "Kik", "Snapchat"]));
        let hosts_of = |app: &str| -> std::collections::BTreeSet<&str> {
            study.per_app[app]
                .iter()
                .flat_map(|r| r.hosts.iter())
                .map(|&h| study.symbols.resolve(h))
                .collect()
        };
        let li_hosts = hosts_of("LinkedIn");
        let kik_hosts = hosts_of("Kik");
        assert!(li_hosts.iter().any(|h| h.contains("cedexis")));
        assert!(!kik_hosts.iter().any(|h| h.contains("cedexis")));
        assert!(kik_hosts.iter().any(|h| h.contains("mopub")));
        assert!(!li_hosts.iter().any(|h| h.contains("mopub")));
    }

    #[test]
    fn rich_categories_dominate_poor_ones() {
        let study = run_crawl_study(None, Some(&["Kik"]));
        let rows = study.figures.get("Kik").unwrap();
        let by_cat: BTreeMap<SiteCategory, f64> =
            rows.iter().map(|r| (r.category, r.avg_endpoints)).collect();
        assert!(by_cat[&SiteCategory::News] > by_cat[&SiteCategory::Technology]);
        assert!(by_cat[&SiteCategory::Shopping] > by_cat[&SiteCategory::Search]);
    }

    #[test]
    fn stats_account_for_the_whole_matrix() {
        let sites: Vec<TopSite> = wla_crawler::sites::top_100_sites()
            .into_iter()
            .take(20)
            .collect();
        let study = run_crawl_study(Some(sites), Some(&["Kik"]));
        assert_eq!(study.stats.rows, 2);
        assert_eq!(study.stats.sites, 20);
        assert_eq!(study.stats.visits_total, 40);
        // 10 script steps per visit.
        assert_eq!(study.stats.steps_executed, 40 * 10);
        assert!(study.stats.requests_logged > 0);
        assert_eq!(study.stats.workers.len(), 1);
        assert_eq!(study.stats.workers[0].visits, 40);
        // Each app/site/host string is interned once per worker but seen
        // many times — the memo and interner must be doing their job.
        assert!(study.stats.interner.local_hits > study.stats.interner.local_misses);
        assert!(study.stats.classify_hit_rate() > 0.5, "{:?}", study.stats);
        assert_eq!(
            study.stats.interner.global_symbols,
            study.stats.interner.local_symbols
        );
    }
}
