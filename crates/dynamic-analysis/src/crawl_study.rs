//! The 100-top-site crawl study — Figures 6a and 6b.
//!
//! Crawls the synthetic top-100 list through each WebView-IAB app plus the
//! System WebView Shell baseline, and aggregates the IAB-specific distinct
//! endpoints per site category.

use std::collections::BTreeMap;
use wla_crawler::driver::{crawl_app, crawl_baseline, figure6, CrawlRecord, Figure6Row};
use wla_crawler::sites::{top_100_sites, TopSite};
use wla_device::iab::all_profiles;

/// The crawl study output.
#[derive(Debug, Clone)]
pub struct CrawlStudy {
    /// Baseline (System WebView Shell) records.
    pub baseline: Vec<CrawlRecord>,
    /// Per-app crawl records.
    pub per_app: BTreeMap<String, Vec<CrawlRecord>>,
    /// Per-app Figure 6 rows (baseline-subtracted).
    pub figures: BTreeMap<String, Vec<Figure6Row>>,
}

impl CrawlStudy {
    /// Figure 6 rows for one app.
    pub fn figure_for(&self, app_name: &str) -> Option<&Vec<Figure6Row>> {
        self.figures.get(app_name)
    }
}

/// Run the full crawl study over `sites` (pass [`top_100_sites`] for the
/// paper's configuration) for the given app names (None = all ten).
pub fn run_crawl_study(sites: Option<Vec<TopSite>>, apps: Option<&[&str]>) -> CrawlStudy {
    let sites = sites.unwrap_or_else(top_100_sites);
    let baseline = crawl_baseline(&sites);
    let mut per_app = BTreeMap::new();
    let mut figures = BTreeMap::new();
    for profile in all_profiles() {
        if let Some(filter) = apps {
            if !filter.contains(&profile.app_name) {
                continue;
            }
        }
        let records = crawl_app(&profile, &sites);
        figures.insert(profile.app_name.to_owned(), figure6(&records, &baseline));
        per_app.insert(profile.app_name.to_owned(), records);
    }
    CrawlStudy {
        baseline,
        per_app,
        figures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wla_crawler::sites::SiteCategory;

    #[test]
    fn linkedin_and_kik_figures_present() {
        let study = run_crawl_study(None, Some(&["LinkedIn", "Kik"]));
        assert_eq!(study.figures.len(), 2);
        let li = study.figure_for("LinkedIn").unwrap();
        let kik = study.figure_for("Kik").unwrap();
        assert_eq!(li.len(), 10); // one row per site category
        assert_eq!(kik.len(), 10);
    }

    #[test]
    fn endpoints_isolated_to_the_iab() {
        // "These endpoints were specific to LinkedIn's IAB and were not
        // contacted by any other app's IAB" (§4.2.2).
        let study = run_crawl_study(None, Some(&["LinkedIn", "Kik", "Snapchat"]));
        let li_hosts: std::collections::BTreeSet<&String> = study.per_app["LinkedIn"]
            .iter()
            .flat_map(|r| r.hosts.iter())
            .collect();
        let kik_hosts: std::collections::BTreeSet<&String> = study.per_app["Kik"]
            .iter()
            .flat_map(|r| r.hosts.iter())
            .collect();
        assert!(li_hosts.iter().any(|h| h.contains("cedexis")));
        assert!(!kik_hosts.iter().any(|h| h.contains("cedexis")));
        assert!(kik_hosts.iter().any(|h| h.contains("mopub")));
        assert!(!li_hosts.iter().any(|h| h.contains("mopub")));
    }

    #[test]
    fn rich_categories_dominate_poor_ones() {
        let study = run_crawl_study(None, Some(&["Kik"]));
        let rows = study.figure_for("Kik").unwrap();
        let by_cat: BTreeMap<SiteCategory, f64> =
            rows.iter().map(|r| (r.category, r.avg_endpoints)).collect();
        assert!(by_cat[&SiteCategory::News] > by_cat[&SiteCategory::Technology]);
        assert!(by_cat[&SiteCategory::Shopping] > by_cat[&SiteCategory::Search]);
    }
}
