//! Shard-level streaming corpus runner: analyze a sharded on-disk corpus
//! without ever materializing it in memory.
//!
//! Workers claim whole shards from one atomic counter, `mmap(2)` each
//! shard (via [`wla_apk::ContainerSource`]) and analyze its entries
//! through the zero-copy decode path — container bytes are read straight
//! from the page cache, so resident memory is bounded by the number of
//! *concurrently open* shards, not the corpus size. Everything downstream
//! of the workers reuses the in-memory pipeline's serial join tail
//! ([`crate::pipeline`]): results are keyed by **global entry index**
//! (prefix sums of per-shard entry counts in sorted-shard order), which
//! makes the input-order symbol remap — and therefore the entire
//! [`PipelineOutput`] — bit-identical to loading the same corpus in
//! memory and running [`crate::run_pipeline`], at any worker count.
//!
//! **Resumability.** With [`StreamConfig::resume`] on, each finished
//! shard's results are serialized to `<dir>/manifest/<shard>.done` keyed
//! to the shard's stamp (header checksum + length). A rerun loads those
//! instead of re-analyzing; any staleness or damage in a cache file is a
//! silent miss. [`StreamCounters`] reports what was streamed, what was
//! served from cache, shard-level failures, and mapped-memory usage.

use crate::analyze::{analyze_app_bytes_timed_with, AnalysisCtx};
use crate::cache;
use crate::pipeline::{join_worker_yields, PipelineConfig, PipelineOutput, WorkerYield};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;
use wla_apk::ApkError;
use wla_corpus::shard::{list_shards, read_shard_stamp, Shard, ShardStamp};
use wla_sdk_index::SdkIndex;

/// Subdirectory of a sharded corpus holding per-shard resume caches.
pub const MANIFEST_SUBDIR: &str = "manifest";

/// Streaming-run configuration.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Scheduler/analysis knobs shared with the in-memory pipeline.
    /// `batch` is ignored: the streaming claim unit is one shard.
    pub pipeline: PipelineConfig,
    /// Memory-map shards (default). `false` falls back to buffered reads
    /// — same results, one heap copy per shard.
    pub mmap: bool,
    /// Maintain and honor the per-shard resume manifest (default). When
    /// off, nothing under [`MANIFEST_SUBDIR`] is read or written.
    pub resume: bool,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            pipeline: PipelineConfig::default(),
            mmap: true,
            resume: true,
        }
    }
}

/// Counters specific to the shard-streaming path, carried on
/// [`PipelineStats::stream`](crate::PipelineStats) (all-zero for
/// in-memory runs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamCounters {
    /// Shards opened, validated, and analyzed this run.
    pub shards_read: usize,
    /// Shards skipped entirely — their results came from the resume
    /// manifest.
    pub shards_cached: usize,
    /// Shard *files* that failed to open or validate (distinct from
    /// per-entry container failures, which land in `failure_kinds`).
    pub shard_failures: usize,
    /// Shard-level failure taxonomy, keyed by
    /// [`ShardError::kind`](wla_corpus::ShardError::kind).
    pub shard_failure_kinds: BTreeMap<&'static str, usize>,
    /// Entries analyzed from shard bytes this run.
    pub entries_streamed: usize,
    /// Entries whose results were loaded from the resume manifest.
    pub entries_cached: usize,
    /// Total bytes of shard files opened through `mmap` this run.
    pub bytes_mapped: u64,
    /// High-water mark of *concurrently* mapped shard bytes — the
    /// streaming path's address-space footprint (resident memory is
    /// bounded above by this and typically far below it, since the
    /// kernel pages shard data in and out on demand).
    pub peak_mapped_bytes: u64,
}

/// What one streaming worker learned about each shard it claimed.
struct ShardOutcome {
    index: usize,
    entries: usize,
    cached: bool,
    failure: Option<&'static str>,
    mapped_bytes: u64,
}

/// Resume-cache path for a shard file.
fn cache_path_for(manifest_dir: &Path, shard_path: &Path) -> PathBuf {
    let stem = shard_path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("shard");
    manifest_dir.join(format!("{stem}.done"))
}

/// Analyze a sharded corpus directory (written by
/// [`wla_corpus::write_sharded_corpus`]) end-to-end.
///
/// Output is bit-identical to reading every shard entry into memory and
/// running [`crate::run_pipeline`] over it, for any worker count and
/// shard size. The `io::Result` covers only corpus-level failures (no
/// shard directory); individual shard and entry failures are counted in
/// [`StreamCounters`] and the failure taxonomy instead.
pub fn run_pipeline_streamed(
    dir: &Path,
    catalog: &SdkIndex,
    config: StreamConfig,
) -> io::Result<PipelineOutput> {
    let shards = list_shards(dir)?;
    let manifest_dir = dir.join(MANIFEST_SUBDIR);
    if config.resume {
        fs::create_dir_all(&manifest_dir)?;
    }
    let started = Instant::now();
    let workers = config.pipeline.workers;
    let workers = if workers > 0 {
        workers
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
    .min(shards.len().max(1));
    let next = AtomicUsize::new(0);
    let mapped_now = AtomicU64::new(0);
    let mapped_peak = AtomicU64::new(0);

    type Pairs = Vec<(u32, u32, Result<crate::AppAnalysis, ApkError>)>;
    let per_worker: Vec<(WorkerYield, Pairs, Vec<ShardOutcome>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut ctx = AnalysisCtx::new(catalog);
                    ctx.use_dataflow = config.pipeline.use_dataflow;
                    ctx.verify_preset = config.pipeline.verify_preset;
                    ctx.use_lut = config.pipeline.use_lut;
                    let mut y = WorkerYield::empty();
                    let mut pairs: Pairs = Vec::new();
                    let mut outcomes: Vec<ShardOutcome> = Vec::new();
                    loop {
                        let s = next.fetch_add(1, Ordering::Relaxed);
                        if s >= shards.len() {
                            break;
                        }
                        y.stats.batches += 1;
                        let claimed = Instant::now();
                        let outcome = stream_one_shard(
                            s,
                            &shards[s],
                            &manifest_dir,
                            config,
                            &mut ctx,
                            &mut y,
                            &mut pairs,
                            &mapped_now,
                            &mapped_peak,
                        );
                        y.stats.busy_ns += claimed.elapsed().as_nanos() as u64;
                        outcomes.push(outcome);
                    }
                    y.callgraph = ctx.callgraph_counters();
                    y.dataflow = ctx.dataflow;
                    y.decode = ctx.decode;
                    y.lexicon = ctx.lexicon;
                    y.label_hits = ctx.labels.hits;
                    y.label_misses = ctx.labels.misses;
                    (y, pairs, outcomes)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("worker bodies cannot panic: analysis is wrapped in catch_unwind")
            })
            .collect()
    });

    // Per-shard entry counts → prefix sums → global entry indices. Shards
    // that failed contribute zero entries; the remaining indices still
    // cover 0..n exactly once, which the join tail asserts.
    let mut counts = vec![0usize; shards.len()];
    let mut counters = StreamCounters::default();
    for (_, _, outcomes) in &per_worker {
        for o in outcomes {
            counts[o.index] = o.entries;
            counters.bytes_mapped += o.mapped_bytes;
            if let Some(kind) = o.failure {
                counters.shard_failures += 1;
                *counters.shard_failure_kinds.entry(kind).or_insert(0) += 1;
            } else if o.cached {
                counters.shards_cached += 1;
                counters.entries_cached += o.entries;
            } else {
                counters.shards_read += 1;
                counters.entries_streamed += o.entries;
            }
        }
    }
    counters.peak_mapped_bytes = mapped_peak.load(Ordering::Relaxed);
    let mut base = vec![0usize; shards.len() + 1];
    for i in 0..shards.len() {
        base[i + 1] = base[i] + counts[i];
    }
    let n = base[shards.len()];

    let yields: Vec<WorkerYield> = per_worker
        .into_iter()
        .map(|(mut y, pairs, _)| {
            y.results = pairs
                .into_iter()
                .map(|(s, e, r)| (base[s as usize] + e as usize, r))
                .collect();
            y
        })
        .collect();

    let mut output = join_worker_yields(n, 1, started, yields);
    output.stats.stream = counters;
    Ok(output)
}

/// Claim-body for one shard: resume-cache lookup, streaming analysis,
/// cache write-back, and mapped-bytes accounting.
#[allow(clippy::too_many_arguments)]
fn stream_one_shard(
    index: usize,
    path: &Path,
    manifest_dir: &Path,
    config: StreamConfig,
    ctx: &mut AnalysisCtx<'_>,
    y: &mut WorkerYield,
    pairs: &mut Vec<(u32, u32, Result<crate::AppAnalysis, ApkError>)>,
    mapped_now: &AtomicU64,
    mapped_peak: &AtomicU64,
) -> ShardOutcome {
    let mut outcome = ShardOutcome {
        index,
        entries: 0,
        cached: false,
        failure: None,
        mapped_bytes: 0,
    };
    let cache_path = cache_path_for(manifest_dir, path);

    if config.resume {
        if let Ok(stamp) = read_shard_stamp(path) {
            if let Some(results) = cache::load_result_cache(&cache_path, stamp, &mut ctx.lexicon) {
                outcome.cached = true;
                outcome.entries = results.len();
                for (e, result) in results.into_iter().enumerate() {
                    if let Err(err) = &result {
                        *y.failures.entry(err.kind()).or_insert(0) += 1;
                        if matches!(err, ApkError::AnalysisPanic { .. }) {
                            y.panicked += 1;
                        }
                    }
                    y.stats.apps += 1;
                    pairs.push((index as u32, e as u32, result));
                }
                return outcome;
            }
        }
    }

    let opened = if config.mmap {
        Shard::open(path)
    } else {
        Shard::open_buffered(path)
    };
    let shard = match opened {
        Ok(mut shard) => {
            // The open just revalidated the shard's file-level checksum, so
            // its entry windows carry whatever trust the run configured.
            shard.set_verify_preset(config.pipeline.verify_preset);
            shard
        }
        Err(e) => {
            outcome.failure = Some(e.kind());
            return outcome;
        }
    };
    if shard.is_mapped() {
        outcome.mapped_bytes = shard.file_len();
        let now =
            mapped_now.fetch_add(outcome.mapped_bytes, Ordering::Relaxed) + outcome.mapped_bytes;
        mapped_peak.fetch_max(now, Ordering::Relaxed);
    }

    let first = pairs.len();
    for e in 0..shard.len() {
        let meta = shard.entry_meta(e).clone();
        let bytes = shard.entry_bytes(e);
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            analyze_app_bytes_timed_with(meta, bytes, ctx)
        }));
        let result = match attempt {
            Ok((result, timings)) => {
                if config.pipeline.stage_timings {
                    y.stage.accumulate(&timings);
                }
                result
            }
            Err(payload) => {
                y.panicked += 1;
                Err(ApkError::AnalysisPanic {
                    message: crate::pipeline::panic_message(payload),
                })
            }
        };
        if let Err(err) = &result {
            *y.failures.entry(err.kind()).or_insert(0) += 1;
        }
        y.stats.apps += 1;
        pairs.push((index as u32, e as u32, result));
    }
    outcome.entries = shard.len();

    if config.resume {
        // Keyed to the exact bytes just analyzed (the open-time checksum),
        // written atomically; failure to cache is not failure to analyze.
        let stamp = ShardStamp {
            checksum: shard.checksum(),
            file_len: shard.file_len(),
        };
        let refs: Vec<&Result<crate::AppAnalysis, ApkError>> =
            pairs[first..].iter().map(|(_, _, r)| r).collect();
        let _ = cache::write_result_cache(&cache_path, stamp, &refs, &ctx.lexicon);
    }

    if shard.is_mapped() {
        mapped_now.fetch_sub(outcome.mapped_bytes, Ordering::Relaxed);
    }
    outcome
}
