//! Intra-procedural constant propagation for URL provenance.
//!
//! The register-lowered SDEX body of a method is a tiny dataflow problem:
//! `const-string` defines a register, `move` copies one, and an invoke
//! reads its first argument register. This pass answers, per invoke, "is
//! that register provably a single string-pool constant on every path?"
//! — the question §3.1.4's URL-origin census needs answered at every
//! `loadUrl` / `launchUrl` site.
//!
//! The lattice is per-register with three levels:
//!
//! ```text
//!        ⊤  (Top: conflicting constants met at a join)
//!      / | \
//!  Const(0) Const(1) …   (a known string-pool index)
//!      \ | /
//!        ⊥  (Bottom: no definition seen)
//! ```
//!
//! Branch-free methods — the overwhelmingly common case in the corpus —
//! take a linear fast path: one forward sweep, no block construction.
//! Methods with `if-test`/`goto` get basic blocks and a worklist fixpoint;
//! the lattice has height 2 per register, so each block is visited a
//! bounded number of times. Malformed branch targets (possible only in
//! hand-built or corrupted bodies — the decoder does not range-check
//! offsets) simply contribute no edge: the pass never panics on decoded
//! input.
//!
//! The legacy single-pending-string heuristic survives as
//! [`wla_callgraph::provenance_oracle`]; `tests/provenance_equivalence.rs`
//! proves this pass equal to it on adjacency-shaped code and strictly
//! better on register-shuffled code.

use wla_apk::sdex::{Instruction, MethodDef};
use wla_apk::Dex;
use wla_callgraph::{annotate_provenance, CallSite, Provenance};

/// Widest register file the fixpoint tracks. Decoded methods stay far
/// below this (the lowering allocates registers per call site); a
/// hand-built method wider than the cap still analyzes, but reads of
/// untracked registers conservatively yield [`Value::Top`].
const MAX_TRACKED_REGISTERS: usize = 4096;

/// One register's abstract value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    /// No definition reaches here.
    Bottom,
    /// Exactly this string-pool index reaches here on every path.
    Const(u32),
    /// Distinct constants (or a constant and nothing) merge here.
    Top,
}

impl Value {
    fn join(self, other: Value) -> Value {
        match (self, other) {
            (Value::Bottom, v) | (v, Value::Bottom) => v,
            (Value::Const(a), Value::Const(b)) if a == b => self,
            _ => Value::Top,
        }
    }
}

/// Observability counters for the pass, folded into
/// [`PipelineStats`](crate::pipeline::PipelineStats) across workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataflowCounters {
    /// Methods analyzed.
    pub methods: u64,
    /// Methods that took the branch-free linear fast path.
    pub linear_methods: u64,
    /// Basic blocks built for branchy methods.
    pub blocks: u64,
    /// Worklist block visits across all fixpoints (≥ `blocks`).
    pub iterations: u64,
    /// Invokes whose URL argument resolved to a single constant.
    pub resolved_sites: u64,
    /// Invokes with no resolvable argument (undefined register or no
    /// arguments at all).
    pub unknown_sites: u64,
    /// Invokes whose argument merges distinct constants.
    pub conflict_sites: u64,
}

impl DataflowCounters {
    /// Fold another worker's counters into this one.
    pub fn merge(&mut self, other: &DataflowCounters) {
        self.methods += other.methods;
        self.linear_methods += other.linear_methods;
        self.blocks += other.blocks;
        self.iterations += other.iterations;
        self.resolved_sites += other.resolved_sites;
        self.unknown_sites += other.unknown_sites;
        self.conflict_sites += other.conflict_sites;
    }

    /// Total invokes classified.
    pub fn sites(&self) -> u64 {
        self.resolved_sites + self.unknown_sites + self.conflict_sites
    }

    /// Fraction of invokes resolved to a constant.
    pub fn resolved_rate(&self) -> f64 {
        let total = self.sites();
        if total == 0 {
            return 0.0;
        }
        self.resolved_sites as f64 / total as f64
    }
}

/// Abstract register file with a clamped width; reads past the clamp are
/// conservatively [`Value::Top`], writes past it are dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
struct State(Vec<Value>);

impl State {
    fn bottom(width: usize) -> State {
        State(vec![Value::Bottom; width])
    }

    fn get(&self, reg: u16) -> Value {
        self.0.get(reg as usize).copied().unwrap_or(Value::Top)
    }

    fn set(&mut self, reg: u16, v: Value) {
        if let Some(slot) = self.0.get_mut(reg as usize) {
            *slot = v;
        }
    }

    /// Join `other` into `self`; true iff anything changed.
    fn join_from(&mut self, other: &State) -> bool {
        let mut changed = false;
        for (a, &b) in self.0.iter_mut().zip(&other.0) {
            let joined = a.join(b);
            if joined != *a {
                *a = joined;
                changed = true;
            }
        }
        changed
    }
}

/// Apply one instruction to the abstract state.
fn transfer(state: &mut State, ins: &Instruction) {
    match ins {
        Instruction::ConstString { dst, string } => state.set(dst.0, Value::Const(*string)),
        Instruction::Move { dst, src } => {
            let v = state.get(src.0);
            state.set(dst.0, v);
        }
        _ => {}
    }
}

/// Provenance of an invoke whose first argument register holds `v`.
fn provenance_of(v: Option<Value>, counters: &mut DataflowCounters) -> Provenance {
    match v {
        Some(Value::Const(s)) => {
            counters.resolved_sites += 1;
            Provenance::Const(s)
        }
        Some(Value::Top) => {
            counters.conflict_sites += 1;
            Provenance::Conflict
        }
        Some(Value::Bottom) | None => {
            counters.unknown_sites += 1;
            Provenance::Unknown
        }
    }
}

/// Resolve every invoke of `code` to a [`Provenance`], in code order.
///
/// `registers` is the method's declared register count; the state vector
/// is sized from it (clamped to [`MAX_TRACKED_REGISTERS`]).
pub fn method_provenance(
    code: &[Instruction],
    registers: u32,
    counters: &mut DataflowCounters,
) -> Vec<Provenance> {
    counters.methods += 1;
    let width = (registers as usize).min(MAX_TRACKED_REGISTERS);
    let branchy = code
        .iter()
        .any(|i| matches!(i, Instruction::IfTest { .. } | Instruction::Goto { .. }));
    if !branchy {
        counters.linear_methods += 1;
        return linear_provenance(code, width, counters);
    }
    fixpoint_provenance(code, width, counters)
}

/// Branch-free fast path: one sweep, no blocks.
fn linear_provenance(
    code: &[Instruction],
    width: usize,
    counters: &mut DataflowCounters,
) -> Vec<Provenance> {
    let mut state = State::bottom(width);
    let mut out = Vec::new();
    for ins in code {
        if let Instruction::Invoke { args, .. } = ins {
            let v = args.first().map(|r| state.get(r.0));
            out.push(provenance_of(v, counters));
        }
        transfer(&mut state, ins);
    }
    out
}

/// Basic blocks + worklist fixpoint for branchy methods.
fn fixpoint_provenance(
    code: &[Instruction],
    width: usize,
    counters: &mut DataflowCounters,
) -> Vec<Provenance> {
    let n = code.len();
    // Leaders: instruction indices that start a block. Offsets are
    // relative instruction counts; targets outside `0..n` are treated as
    // absent edges, so they create no leader.
    let in_range = |t: i64| t >= 0 && t < n as i64;
    let mut leader = vec![false; n.max(1)];
    if n > 0 {
        leader[0] = true;
    }
    for (i, ins) in code.iter().enumerate() {
        let mark = |leader: &mut Vec<bool>, t: i64| {
            if in_range(t) {
                leader[t as usize] = true;
            }
        };
        match ins {
            Instruction::IfTest { offset } | Instruction::Goto { offset } => {
                mark(&mut leader, i as i64 + *offset as i64);
                mark(&mut leader, i as i64 + 1);
            }
            Instruction::ReturnVoid => mark(&mut leader, i as i64 + 1),
            _ => {}
        }
    }

    // Block table: `starts[b]..block_end(b)` spans block b's instructions.
    let starts: Vec<usize> = (0..n).filter(|&i| leader[i]).collect();
    let nblocks = starts.len();
    counters.blocks += nblocks as u64;
    let block_end = |b: usize| starts.get(b + 1).copied().unwrap_or(n);
    // Map instruction index → owning block for successor resolution.
    let mut block_of = vec![0usize; n];
    for (b, &s) in starts.iter().enumerate() {
        for slot in block_of.iter_mut().take(block_end(b)).skip(s) {
            *slot = b;
        }
    }
    let successors = |b: usize| -> Vec<usize> {
        let last = block_end(b) - 1;
        let mut succ = Vec::with_capacity(2);
        let mut push = |t: i64| {
            if in_range(t) {
                succ.push(block_of[t as usize]);
            }
        };
        match &code[last] {
            Instruction::IfTest { offset } => {
                push(last as i64 + 1);
                push(last as i64 + *offset as i64);
            }
            Instruction::Goto { offset } => push(last as i64 + *offset as i64),
            Instruction::ReturnVoid => {}
            _ => push(last as i64 + 1),
        }
        succ
    };

    // Worklist fixpoint over block entry states. Every block is seeded so
    // unreachable code still gets (all-⊥) provenance assignments.
    let mut in_states: Vec<State> = (0..nblocks).map(|_| State::bottom(width)).collect();
    let mut queued = vec![true; nblocks];
    let mut worklist: Vec<usize> = (0..nblocks).collect();
    while let Some(b) = worklist.pop() {
        queued[b] = false;
        counters.iterations += 1;
        let mut out = in_states[b].clone();
        for ins in &code[starts[b]..block_end(b)] {
            transfer(&mut out, ins);
        }
        for s in successors(b) {
            if in_states[s].join_from(&out) && !queued[s] {
                queued[s] = true;
                worklist.push(s);
            }
        }
    }

    // Final sweep in code order reading the converged entry states.
    let mut out = Vec::new();
    for (b, &start) in starts.iter().enumerate() {
        let mut state = in_states[b].clone();
        for ins in &code[start..block_end(b)] {
            if let Instruction::Invoke { args, .. } = ins {
                let v = args.first().map(|r| state.get(r.0));
                out.push(provenance_of(v, counters));
            }
            transfer(&mut state, ins);
        }
    }
    out
}

/// Annotate `sites` (in [`wla_callgraph::CallGraph::sites_mut`] order)
/// with dataflow-resolved provenance for every method of `dex`.
pub fn annotate(dex: &Dex, sites: &mut [CallSite], counters: &mut DataflowCounters) {
    annotate_provenance(dex, sites, |m: &MethodDef| {
        method_provenance(&m.code, m.registers, counters)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use wla_apk::sdex::{InvokeKind, MethodId, Reg};

    fn cs(dst: u16, s: u32) -> Instruction {
        Instruction::ConstString {
            dst: Reg(dst),
            string: s,
        }
    }

    fn mv(dst: u16, src: u16) -> Instruction {
        Instruction::Move {
            dst: Reg(dst),
            src: Reg(src),
        }
    }

    fn call(arg: u16) -> Instruction {
        Instruction::Invoke {
            kind: InvokeKind::Virtual,
            method: MethodId(0),
            args: vec![Reg(arg)],
        }
    }

    fn run(code: &[Instruction]) -> (Vec<Provenance>, DataflowCounters) {
        let registers = code
            .iter()
            .filter_map(Instruction::max_reg)
            .max()
            .map(|r| r as u32 + 1)
            .unwrap_or(0);
        let mut counters = DataflowCounters::default();
        let out = method_provenance(code, registers, &mut counters);
        (out, counters)
    }

    #[test]
    fn linear_const_through_moves_resolves() {
        let code = [
            cs(0, 7),
            mv(1, 0),
            mv(2, 1),
            call(2),
            Instruction::ReturnVoid,
        ];
        let (p, c) = run(&code);
        assert_eq!(p, vec![Provenance::Const(7)]);
        assert_eq!(c.linear_methods, 1);
        assert_eq!(c.blocks, 0);
        assert_eq!(c.resolved_sites, 1);
    }

    #[test]
    fn undefined_register_is_unknown() {
        let code = [cs(0, 7), call(3), Instruction::ReturnVoid];
        let (p, c) = run(&code);
        assert_eq!(p, vec![Provenance::Unknown]);
        assert_eq!(c.unknown_sites, 1);
    }

    #[test]
    fn no_arg_invoke_is_unknown() {
        let code = [
            cs(0, 7),
            Instruction::Invoke {
                kind: InvokeKind::Static,
                method: MethodId(0),
                args: vec![],
            },
            Instruction::ReturnVoid,
        ];
        let (p, _) = run(&code);
        assert_eq!(p, vec![Provenance::Unknown]);
    }

    #[test]
    fn iftest_and_goto_split_blocks() {
        // if → (fallthrough | skip) → join → call. The const is defined
        // before the branch, untouched on both paths: still Const.
        let code = [
            cs(0, 9),
            Instruction::IfTest { offset: 2 },
            Instruction::Nop,
            call(0),
            Instruction::ReturnVoid,
        ];
        let (p, c) = run(&code);
        assert_eq!(p, vec![Provenance::Const(9)]);
        assert_eq!(c.linear_methods, 0);
        // Blocks: [cs, if], [nop], [call, ret] — the if targets index 3,
        // which also starts a block after the nop's fallthrough.
        assert_eq!(c.blocks, 3);
        assert!(c.iterations >= c.blocks);
    }

    #[test]
    fn diamond_with_distinct_constants_conflicts() {
        // if: fallthrough writes Const(1), branch path writes Const(2);
        // both reach the call → Top → Conflict.
        let code = [
            Instruction::IfTest { offset: 3 },
            cs(0, 1),
            Instruction::Goto { offset: 2 },
            cs(0, 2),
            call(0),
            Instruction::ReturnVoid,
        ];
        let (p, c) = run(&code);
        assert_eq!(p, vec![Provenance::Conflict]);
        assert_eq!(c.conflict_sites, 1);
    }

    #[test]
    fn diamond_with_equal_constants_resolves() {
        let code = [
            Instruction::IfTest { offset: 3 },
            cs(0, 5),
            Instruction::Goto { offset: 2 },
            cs(0, 5),
            call(0),
            Instruction::ReturnVoid,
        ];
        let (p, _) = run(&code);
        assert_eq!(p, vec![Provenance::Const(5)]);
    }

    #[test]
    fn defined_on_one_path_only_still_resolves() {
        // ⊥ ⊔ Const = Const: a register defined on only one incoming path
        // keeps its constant (the other path never defines it).
        let code = [
            Instruction::IfTest { offset: 2 },
            cs(0, 4),
            call(0),
            Instruction::ReturnVoid,
        ];
        let (p, _) = run(&code);
        assert_eq!(p, vec![Provenance::Const(4)]);
    }

    #[test]
    fn out_of_range_branch_targets_do_not_panic() {
        // The if's target and the goto's target are both out of range:
        // neither contributes an edge, the fallthrough chain still
        // reaches the call, and nothing panics.
        let code = [
            Instruction::IfTest { offset: 100 },
            cs(0, 3),
            call(0),
            Instruction::Goto { offset: -50 },
            Instruction::ReturnVoid,
        ];
        let (p, _) = run(&code);
        assert_eq!(p, vec![Provenance::Const(3)]);
    }

    #[test]
    fn code_after_return_is_isolated() {
        // ReturnVoid ends its block with no successors; the call after it
        // sees the all-⊥ seed state, not the constant.
        let code = [cs(0, 8), Instruction::ReturnVoid, call(0)];
        let code_with_branch = [
            cs(0, 8),
            Instruction::Goto { offset: 1 },
            Instruction::ReturnVoid,
            call(0),
        ];
        // Branch-free bodies take the linear path (no reachability), so
        // use the branchy variant to exercise block isolation... the
        // linear one inlines straight through by design.
        let (p, _) = run(&code);
        assert_eq!(p, vec![Provenance::Const(8)]); // linear path: no CFG
        let (p, _) = run(&code_with_branch);
        assert_eq!(p, vec![Provenance::Unknown]); // CFG path: dead block
    }

    #[test]
    fn loop_reaches_fixpoint() {
        // Back edge re-joining the header with a different constant:
        // first iteration Const(1), loop body writes Const(2) → header
        // joins to Top → Conflict at the call.
        let code = [
            cs(0, 1),
            call(0), // header: sees Const(1) ⊔ Const(2) = Top
            cs(0, 2),
            Instruction::IfTest { offset: -2 },
            Instruction::ReturnVoid,
        ];
        let (p, c) = run(&code);
        assert_eq!(p, vec![Provenance::Conflict]);
        // The back edge forces at least one revisit.
        assert!(c.iterations > c.blocks);
    }

    #[test]
    fn counters_partition_sites() {
        let code = [
            cs(0, 1),
            call(0), // resolved
            call(7), // unknown (undefined)
            Instruction::IfTest { offset: 3 },
            cs(1, 2),
            Instruction::Goto { offset: 2 },
            cs(1, 3),
            call(1), // conflict
            Instruction::ReturnVoid,
        ];
        let (p, c) = run(&code);
        assert_eq!(p.len(), 3);
        assert_eq!(
            (c.resolved_sites, c.unknown_sites, c.conflict_sites),
            (1, 1, 1)
        );
        assert_eq!(c.sites(), 3);
        assert!((c.resolved_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = DataflowCounters {
            methods: 1,
            linear_methods: 1,
            blocks: 2,
            iterations: 3,
            resolved_sites: 4,
            unknown_sites: 5,
            conflict_sites: 6,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.methods, 2);
        assert_eq!(a.iterations, 6);
        assert_eq!(a.sites(), 30);
    }
}
