//! Per-app static analysis: container → decoded artifacts → decompiled
//! subclass map → call graph → recorded, deep-link-filtered call sites.

use std::collections::HashSet;
use wla_apk::names::package_of;
use wla_apk::{ApkError, Dex, Sapk};
use wla_callgraph::{entry_points, record_web_calls, CallGraph};
use wla_corpus::playstore::AppMeta;
use wla_decompile::{lift_dex, webview_subclasses};
use wla_manifest::{wireformat, Manifest};

/// One reachable WebView content-method call, summarized for aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WebViewSiteSummary {
    /// Method name (`loadUrl`, …).
    pub method: String,
    /// Binary name of the calling class.
    pub caller_class: String,
    /// Dotted package of the calling class (`None` for default package).
    pub caller_package: Option<String>,
    /// The call sits inside a deep-link (first-party) activity and is
    /// excluded from third-party accounting.
    pub in_deep_link_activity: bool,
    /// Whether this is one of the three *content-populating* load methods
    /// whose caller package the paper labels (§3.1.4).
    pub is_load_method: bool,
}

/// One reachable Custom-Tabs interaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtSiteSummary {
    /// `launchUrl`, `build`, or `<init>`.
    pub method: String,
    /// Binary name of the calling class.
    pub caller_class: String,
    /// Dotted package of the calling class.
    pub caller_package: Option<String>,
    /// Deep-link exclusion flag (parallel to WebView sites).
    pub in_deep_link_activity: bool,
}

/// The full static-analysis result for one app.
#[derive(Debug, Clone, PartialEq)]
pub struct AppAnalysis {
    /// Play metadata carried through for per-category aggregation.
    pub meta: AppMeta,
    /// Manifest package name.
    pub package: String,
    /// Reachable WebView call sites (deep-link ones included but flagged).
    pub webview_sites: Vec<WebViewSiteSummary>,
    /// Reachable CT call sites.
    pub ct_sites: Vec<CtSiteSummary>,
    /// Binary names of `extends WebView` classes found by decompilation.
    pub custom_webview_classes: Vec<String>,
    /// Unreachable WebView call sites that were discarded (kept as a count
    /// for the traversal ablation).
    pub unreachable_webview_sites: usize,
}

impl AppAnalysis {
    /// Third-party WebView sites (reachable, outside deep-link activities).
    pub fn third_party_webview(&self) -> impl Iterator<Item = &WebViewSiteSummary> {
        self.webview_sites
            .iter()
            .filter(|s| !s.in_deep_link_activity)
    }

    /// Third-party CT sites.
    pub fn third_party_ct(&self) -> impl Iterator<Item = &CtSiteSummary> {
        self.ct_sites.iter().filter(|s| !s.in_deep_link_activity)
    }

    /// Does the app use WebViews for third-party-capable content?
    pub fn uses_webview(&self) -> bool {
        self.third_party_webview().next().is_some()
    }

    /// Does the app use Custom Tabs?
    pub fn uses_custom_tabs(&self) -> bool {
        self.third_party_ct().next().is_some()
    }

    /// Distinct method names called (third-party sites only).
    pub fn methods_used(&self) -> HashSet<&str> {
        self.third_party_webview()
            .map(|s| s.method.as_str())
            .collect()
    }
}

/// Run the full per-app pipeline on raw container bytes.
///
/// Multi-dex containers are handled the way the paper's tooling handles
/// `classes2.dex`: every dex section is decoded (one broken dex makes the
/// whole app unanalyzable), decompiled sources are pooled for the
/// WebView-subclass closure, and call graphs are built and traversed per
/// dex with the records merged. Cross-dex calls resolve as framework
/// (external) targets — sound for reachability *within* each dex, and the
/// generator keeps behavioural chains dex-local, as R8's main-dex rules do
/// for entry-point code in practice.
pub fn analyze_app(meta: AppMeta, bytes: &[u8]) -> Result<AppAnalysis, ApkError> {
    // (2) unpack the container.
    let apk = Sapk::decode(bytes)?;
    let manifest: Manifest = wireformat::decode(apk.manifest_bytes()?)?;
    let dex_blobs: Vec<&bytes::Bytes> = apk
        .sections()
        .iter()
        .filter(|s| s.tag == wla_apk::SectionTag::Dex)
        .map(|s| &s.data)
        .collect();
    if dex_blobs.is_empty() {
        return Err(ApkError::MissingSection("dex"));
    }
    let dexes: Vec<Dex> = dex_blobs
        .into_iter()
        .map(|blob| Dex::decode(blob))
        .collect::<Result<_, _>>()?;

    // (3) decompile every dex and find custom WebView classes across all.
    let mut sources = Vec::new();
    for dex in &dexes {
        sources.extend(lift_dex(dex));
    }
    let subclasses = webview_subclasses(&sources);

    // Deep-link activity class set for first-party exclusion (§3.1.3).
    let deep_link_classes: HashSet<&str> = manifest
        .deep_link_activities()
        .iter()
        .map(|c| c.class_name.as_str())
        .collect();

    // (4) call graph; (5) traversal + recording — per dex, merged.
    let mut webview_sites = Vec::new();
    let mut ct_sites = Vec::new();
    let mut unreachable_webview_sites = 0usize;
    for dex in &dexes {
        let graph = CallGraph::build(dex);
        let roots = entry_points(&graph, &manifest);
        let record = record_web_calls(&graph, &roots, &subclasses);
        unreachable_webview_sites += record.webview.iter().filter(|s| !s.reachable).count();
        webview_sites.extend(record.webview.iter().filter(|s| s.reachable).map(|s| {
            WebViewSiteSummary {
                method: s.method.clone(),
                caller_package: package_of(&s.caller_class),
                in_deep_link_activity: deep_link_classes.contains(s.caller_class.as_str()),
                is_load_method: wla_apk::names::WEBVIEW_LOAD_METHODS.contains(&s.method.as_str()),
                caller_class: s.caller_class.clone(),
            }
        }));
        ct_sites.extend(
            record
                .custom_tabs
                .iter()
                .filter(|s| s.reachable)
                .map(|s| CtSiteSummary {
                    method: s.method.clone(),
                    caller_package: package_of(&s.caller_class),
                    in_deep_link_activity: deep_link_classes.contains(s.caller_class.as_str()),
                    caller_class: s.caller_class.clone(),
                }),
        );
    }

    let mut custom_webview_classes: Vec<String> = subclasses.into_iter().collect();
    custom_webview_classes.sort();

    Ok(AppAnalysis {
        package: manifest.package.clone(),
        meta,
        webview_sites,
        ct_sites,
        custom_webview_classes,
        unreachable_webview_sites,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wla_corpus::ecosystem::{Ecosystem, MethodSet};
    use wla_corpus::lowering::lower;
    use wla_corpus::playstore::PlayCategory;
    use wla_corpus::EcosystemParams;
    use wla_sdk_index::SdkIndex;

    fn meta() -> AppMeta {
        AppMeta {
            package: "com.testapp.example".into(),
            on_play_store: true,
            downloads: 1_000_000,
            category: PlayCategory::Tools,
            last_update_day: 800,
        }
    }

    fn sample_spec(seed: u64) -> (SdkIndex, wla_corpus::AppSpec) {
        let catalog = SdkIndex::paper();
        let eco = Ecosystem::new(&catalog, EcosystemParams::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = eco.sample_app(&mut rng, meta());
        (catalog, spec)
    }

    #[test]
    fn recovers_ground_truth_per_app() {
        // Over a batch of sampled apps, the pipeline's webview/ct verdicts
        // must exactly match the planted ground truth.
        for seed in 0..60 {
            let (catalog, spec) = sample_spec(seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let bytes = lower(&spec, &catalog, &mut rng).encode();
            let analysis = analyze_app(meta(), &bytes).expect("analyzes");
            assert_eq!(
                analysis.uses_webview(),
                spec.uses_webview(&catalog),
                "webview mismatch at seed {seed}"
            );
            assert_eq!(
                analysis.uses_custom_tabs(),
                spec.uses_custom_tabs(),
                "ct mismatch at seed {seed}"
            );
        }
    }

    #[test]
    fn method_census_matches_ground_truth() {
        for seed in 0..40 {
            let (catalog, spec) = sample_spec(seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let bytes = lower(&spec, &catalog, &mut rng).encode();
            let analysis = analyze_app(meta(), &bytes).unwrap();
            let truth: HashSet<&str> = spec.method_census(&catalog).names().collect();
            let measured = analysis.methods_used();
            assert_eq!(measured, truth, "seed {seed}");
        }
    }

    #[test]
    fn dead_code_not_counted() {
        let (catalog, mut spec) = sample_spec(1);
        spec.sdks.clear();
        spec.direct_wv_methods = MethodSet::EMPTY;
        spec.direct_wv_subclass = false;
        spec.direct_ct = false;
        spec.deep_link = None;
        spec.dead_code_webview = true;
        let mut rng = StdRng::seed_from_u64(1);
        let bytes = lower(&spec, &catalog, &mut rng).encode();
        let analysis = analyze_app(meta(), &bytes).unwrap();
        assert!(!analysis.uses_webview());
        assert_eq!(analysis.unreachable_webview_sites, 1);
    }

    #[test]
    fn deep_link_webview_excluded() {
        let (catalog, mut spec) = sample_spec(2);
        spec.sdks.clear();
        spec.direct_wv_methods = MethodSet::EMPTY;
        spec.direct_wv_subclass = false;
        spec.direct_ct = false;
        spec.dead_code_webview = false;
        spec.deep_link = Some(wla_corpus::DeepLinkSpec {
            host: "firstparty.example.com".into(),
            uses_webview: true,
        });
        let mut rng = StdRng::seed_from_u64(2);
        let bytes = lower(&spec, &catalog, &mut rng).encode();
        let analysis = analyze_app(meta(), &bytes).unwrap();
        // The loadUrl call exists and is reachable, but it's first-party.
        assert_eq!(analysis.webview_sites.len(), 1);
        assert!(analysis.webview_sites[0].in_deep_link_activity);
        assert!(!analysis.uses_webview());
    }

    #[test]
    fn subclass_attribution_works() {
        let (catalog, mut spec) = sample_spec(3);
        spec.sdks.clear();
        spec.direct_wv_methods = MethodSet::load_url_only();
        spec.direct_wv_subclass = true;
        spec.direct_ct = false;
        spec.deep_link = None;
        spec.dead_code_webview = false;
        let mut rng = StdRng::seed_from_u64(3);
        let bytes = lower(&spec, &catalog, &mut rng).encode();
        let analysis = analyze_app(meta(), &bytes).unwrap();
        assert!(analysis.uses_webview());
        assert_eq!(
            analysis.custom_webview_classes,
            vec!["com/testapp/example/web/AppWebView".to_owned()]
        );
    }

    #[test]
    fn corrupted_bytes_error() {
        let (catalog, spec) = sample_spec(4);
        let mut rng = StdRng::seed_from_u64(4);
        let bytes = lower(&spec, &catalog, &mut rng).encode();
        let bad = wla_apk::corrupt::corrupt(
            &bytes,
            wla_apk::corrupt::CorruptionKind::Truncate { keep_num: 100 },
        );
        assert!(analyze_app(meta(), &bad).is_err());
    }

    #[test]
    fn sdk_caller_packages_extracted() {
        let (catalog, mut spec) = sample_spec(5);
        // Force exactly AppLovin.
        let applovin = catalog
            .sdks()
            .iter()
            .position(|s| s.name == "AppLovin")
            .unwrap();
        spec.sdks = vec![wla_corpus::SdkUse {
            sdk_idx: applovin,
            webview: true,
            custom_tabs: false,
        }];
        spec.sdk_category_methods = vec![(
            wla_sdk_index::SdkCategory::Advertising,
            MethodSet::load_url_only(),
        )];
        spec.direct_wv_methods = MethodSet::EMPTY;
        spec.direct_wv_subclass = false;
        spec.direct_ct = false;
        spec.deep_link = None;
        spec.dead_code_webview = false;
        let mut rng = StdRng::seed_from_u64(5);
        let bytes = lower(&spec, &catalog, &mut rng).encode();
        let analysis = analyze_app(meta(), &bytes).unwrap();
        let load_packages: HashSet<_> = analysis
            .third_party_webview()
            .filter(|s| s.is_load_method)
            .filter_map(|s| s.caller_package.clone())
            .collect();
        assert!(
            load_packages.iter().all(|p| p.starts_with("com.applovin")),
            "{load_packages:?}"
        );
        assert!(!load_packages.is_empty());
    }
}

#[cfg(test)]
mod multidex_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wla_corpus::ecosystem::Ecosystem;
    use wla_corpus::lowering::lower;
    use wla_corpus::playstore::PlayCategory;
    use wla_corpus::EcosystemParams;
    use wla_sdk_index::SdkIndex;

    fn meta() -> AppMeta {
        AppMeta {
            package: "com.multidex.app".into(),
            on_play_store: true,
            downloads: 900_000_000,
            category: PlayCategory::Social,
            last_update_day: 1_000,
        }
    }

    /// Build an app guaranteed to be multi-dex (noise_classes >= 6) with
    /// dead code in the secondary dex.
    fn multidex_app() -> (SdkIndex, wla_corpus::AppSpec, Vec<u8>) {
        let catalog = SdkIndex::paper();
        let eco = Ecosystem::new(&catalog, EcosystemParams::default());
        let mut rng = StdRng::seed_from_u64(99);
        let mut spec = eco.sample_app(&mut rng, meta());
        spec.noise_classes = 8;
        spec.dead_code_webview = true;
        let bytes = lower(&spec, &catalog, &mut rng).encode().to_vec();
        (catalog, spec, bytes)
    }

    #[test]
    fn container_actually_has_two_dex_sections() {
        let (_, _, bytes) = multidex_app();
        let apk = Sapk::decode(&bytes).unwrap();
        let dex_sections = apk
            .sections()
            .iter()
            .filter(|s| s.tag == wla_apk::SectionTag::Dex)
            .count();
        assert_eq!(dex_sections, 2);
    }

    #[test]
    fn multidex_analysis_matches_ground_truth() {
        let (catalog, spec, bytes) = multidex_app();
        let analysis = analyze_app(meta(), &bytes).unwrap();
        assert_eq!(analysis.uses_webview(), spec.uses_webview(&catalog));
        assert_eq!(analysis.uses_custom_tabs(), spec.uses_custom_tabs());
        let truth: HashSet<&str> = spec.method_census(&catalog).names().collect();
        assert_eq!(analysis.methods_used(), truth);
        // The dead class lives in classes2.dex and stays dead.
        assert_eq!(analysis.unreachable_webview_sites, 1);
    }

    #[test]
    fn corrupt_secondary_dex_breaks_the_app() {
        let (_, _, bytes) = multidex_app();
        // Flip a byte near the end of the container, where the secondary
        // dex and resources live; container checksum catches it.
        let mut bad = bytes.clone();
        let i = bad.len() - 40;
        bad[i] ^= 0x20;
        assert!(analyze_app(meta(), &bad).is_err());
    }
}
