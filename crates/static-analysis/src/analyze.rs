//! Per-app static analysis: container → decoded artifacts → decompiled
//! subclass map → call graph → recorded, deep-link-filtered call sites.
//!
//! Everything downstream of decoding speaks the interned IR: site
//! summaries carry [`Symbol`]/[`PkgId`] handles resolved against the
//! worker's [`LocalInterner`], and package labels are baked in at record
//! time. The only strings an [`AppAnalysis`] owns are the manifest package
//! and the Play metadata.

use crate::dataflow::{self, DataflowCounters};
use std::collections::HashSet;
use std::time::Instant;
use wla_apk::names::WEBVIEW_CONTENT_METHODS;
use wla_apk::{ApkError, Dex, Sapk, VerifyPreset};
use wla_callgraph::{
    entry_points, provenance_oracle, record_web_calls_with, CallGraph, CallGraphCounters,
    ReachScratch, UrlOrigin, WebCallRecord,
};
use wla_corpus::playstore::AppMeta;
use wla_decompile::webview_subclasses_dex_interned;
use wla_intern::{LocalInterner, PkgId, Symbol};
use wla_manifest::{wireformat, Manifest};
use wla_sdk_index::{LabelCache, LabelId, SdkIndex};

/// Wall-clock nanoseconds spent in each per-app analysis stage.
///
/// Stage boundaries follow Figure 1: container/dex *decode*, *decompile*
/// (source lifting + WebView-subclass closure), *callgraph* (build,
/// entry points, traversal + recording), and *label* (summary building,
/// package extraction, deep-link exclusion). On a decode failure only
/// `decode_ns` is populated — the later stages never ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Container + dex decoding.
    pub decode_ns: u64,
    /// `extends WebView` closure over the dex class tables (the stage the
    /// paper spends on JADX decompilation; the lifted-source oracle lives
    /// in `wla-decompile`).
    pub decompile_ns: u64,
    /// Call-graph construction, entry points, traversal, recording.
    pub callgraph_ns: u64,
    /// Summary construction: package labels, deep-link filtering.
    pub label_ns: u64,
}

impl StageTimings {
    /// Total time across all stages.
    pub fn total_ns(&self) -> u64 {
        self.decode_ns + self.decompile_ns + self.callgraph_ns + self.label_ns
    }

    /// Accumulate another app's timings into this one.
    pub fn accumulate(&mut self, other: &StageTimings) {
        self.decode_ns += other.decode_ns;
        self.decompile_ns += other.decompile_ns;
        self.callgraph_ns += other.callgraph_ns;
        self.label_ns += other.label_ns;
    }
}

/// Dex-decode observability: how many dex decodes ran under each
/// [`VerifyPreset`], and how the type lookup table fared. Summed across a
/// worker's apps, merged into
/// [`PipelineStats`](crate::PipelineStats) at join time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCounters {
    /// Dex decodes under [`VerifyPreset::All`].
    pub full: u64,
    /// Dex decodes under [`VerifyPreset::ChecksumOnly`].
    pub checksum_only: u64,
    /// Dex decodes under [`VerifyPreset::None`] (fully trusted).
    pub trusted: u64,
    /// Decoded dexes that carried a stored (wire-format) lookup table and
    /// kept it ([`AnalysisCtx::use_lut`] on).
    pub lut_present: u64,
    /// Dexes whose probe table was built lazily on first name lookup —
    /// either no stored table on the wire, or the stored one was
    /// discarded under ablation.
    pub lut_rebuilds: u64,
}

impl DecodeCounters {
    /// Dex decodes across all presets.
    pub fn total(&self) -> u64 {
        self.full + self.checksum_only + self.trusted
    }

    /// Fraction of decodes that skipped structural re-validation
    /// (`ChecksumOnly` + `None` over the total).
    pub fn trusted_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.checksum_only + self.trusted) as f64 / total as f64
    }

    /// Accumulate another worker's counters into this one.
    pub fn merge(&mut self, other: &DecodeCounters) {
        self.full += other.full;
        self.checksum_only += other.checksum_only;
        self.trusted += other.trusted;
        self.lut_present += other.lut_present;
        self.lut_rebuilds += other.lut_rebuilds;
    }
}

/// Per-worker analysis state threaded through [`analyze_app_timed_with`]:
/// the shared catalog plus the worker-local string lexicon and package-label
/// memo. One context serves many apps; its lexicon is merged into the
/// global interner when the pipeline joins.
#[derive(Debug)]
pub struct AnalysisCtx<'c> {
    /// SDK catalog used for record-time package labeling.
    pub catalog: &'c SdkIndex,
    /// Worker-local interner; every symbol in this worker's analyses
    /// resolves against it.
    pub lexicon: LocalInterner,
    /// Package-label memo shared across this worker's apps.
    pub labels: LabelCache,
    /// Reusable reachability scratch (bitset + worklist), cleared — not
    /// reallocated — between apps.
    pub reach: ReachScratch,
    /// Call-graph build counters (vtable hits/misses, edges, dedup)
    /// accumulated across this worker's apps; traversal counters stay on
    /// `reach` until [`AnalysisCtx::callgraph_counters`] folds them in.
    pub graph_counters: CallGraphCounters,
    /// Resolve URL-argument provenance with the register dataflow pass
    /// (default). When `false`, the legacy single-pending-string oracle
    /// ([`wla_callgraph::provenance_oracle`]) annotates sites instead —
    /// the ablation the `url_provenance` bench measures.
    pub use_dataflow: bool,
    /// Constant-propagation counters (blocks, fixpoint iterations,
    /// resolved/unknown/conflict sites) accumulated across this worker's
    /// apps.
    pub dataflow: DataflowCounters,
    /// How much decode-time verification each container gets. Defaults to
    /// [`VerifyPreset::All`] — the corruption-facing setting; the trusted
    /// presets are for corpora whose bytes were already validated
    /// end-to-end (a just-generated corpus, a resume-stamped shard).
    pub verify_preset: VerifyPreset,
    /// Use the wire-format type lookup table and the hash-vtable call
    /// graph (default). `false` ablates to the linear/binary-search
    /// paths — the bench knob behind the lut ablation table.
    pub use_lut: bool,
    /// Decode counters (per-preset decodes, lut presence/rebuilds)
    /// accumulated across this worker's apps.
    pub decode: DecodeCounters,
}

impl<'c> AnalysisCtx<'c> {
    /// Fresh context over `catalog`.
    pub fn new(catalog: &'c SdkIndex) -> Self {
        AnalysisCtx {
            catalog,
            lexicon: LocalInterner::new(),
            labels: LabelCache::new(),
            reach: ReachScratch::new(),
            graph_counters: CallGraphCounters::default(),
            use_dataflow: true,
            dataflow: DataflowCounters::default(),
            verify_preset: VerifyPreset::All,
            use_lut: true,
            decode: DecodeCounters::default(),
        }
    }

    /// Complete counter snapshot: build counters plus the scratch's
    /// traversal counters. Call once per worker when its shard is done.
    pub fn callgraph_counters(&self) -> CallGraphCounters {
        let mut c = self.graph_counters;
        c.absorb_scratch(&self.reach);
        c
    }
}

/// One reachable WebView content-method call, summarized for aggregation.
/// Names are symbols in the producing [`AnalysisCtx`]'s lexicon (or the
/// global table after the pipeline remap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WebViewSiteSummary {
    /// Method name (`loadUrl`, …).
    pub method: Symbol,
    /// Position of the method in
    /// [`WEBVIEW_CONTENT_METHODS`](wla_apk::names::WEBVIEW_CONTENT_METHODS);
    /// Table 7 accounting indexes by this.
    pub method_idx: u8,
    /// Binary name of the calling class.
    pub caller_class: Symbol,
    /// Dotted package of the calling class (`None` for default package).
    pub caller_package: Option<PkgId>,
    /// Catalog label of the caller package, fixed at record time.
    pub label: LabelId,
    /// The call sits inside a deep-link (first-party) activity and is
    /// excluded from third-party accounting.
    pub in_deep_link_activity: bool,
    /// Whether this is one of the three *content-populating* load methods
    /// whose caller package the paper labels (§3.1.4).
    pub is_load_method: bool,
    /// URL argument of the call, when constant propagation resolved it to
    /// a single string constant.
    pub argument: Option<Symbol>,
    /// How the URL argument resolved (constant / unknown / conflicting).
    pub origin: UrlOrigin,
}

/// One reachable Custom-Tabs interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtSiteSummary {
    /// `launchUrl`, `build`, or `<init>`.
    pub method: Symbol,
    /// Whether this is the content-populating `launchUrl`.
    pub is_launch: bool,
    /// Binary name of the calling class.
    pub caller_class: Symbol,
    /// Dotted package of the calling class.
    pub caller_package: Option<PkgId>,
    /// Catalog label of the caller package, fixed at record time.
    pub label: LabelId,
    /// Deep-link exclusion flag (parallel to WebView sites).
    pub in_deep_link_activity: bool,
    /// URL argument for `launchUrl` sites, when provenance resolved it.
    pub argument: Option<Symbol>,
    /// How the URL argument resolved (constant / unknown / conflicting).
    pub origin: UrlOrigin,
}

/// The full static-analysis result for one app.
#[derive(Debug, Clone, PartialEq)]
pub struct AppAnalysis {
    /// Play metadata carried through for per-category aggregation.
    pub meta: AppMeta,
    /// Manifest package name.
    pub package: String,
    /// Reachable WebView call sites (deep-link ones included but flagged).
    pub webview_sites: Vec<WebViewSiteSummary>,
    /// Reachable CT call sites.
    pub ct_sites: Vec<CtSiteSummary>,
    /// `extends WebView` classes found by decompilation, sorted by
    /// resolved binary name.
    pub custom_webview_classes: Vec<Symbol>,
    /// Unreachable WebView call sites that were discarded (kept as a count
    /// for the traversal ablation).
    pub unreachable_webview_sites: usize,
}

impl AppAnalysis {
    /// Third-party WebView sites (reachable, outside deep-link activities).
    pub fn third_party_webview(&self) -> impl Iterator<Item = &WebViewSiteSummary> {
        self.webview_sites
            .iter()
            .filter(|s| !s.in_deep_link_activity)
    }

    /// Third-party CT sites.
    pub fn third_party_ct(&self) -> impl Iterator<Item = &CtSiteSummary> {
        self.ct_sites.iter().filter(|s| !s.in_deep_link_activity)
    }

    /// Does the app use WebViews for third-party-capable content?
    pub fn uses_webview(&self) -> bool {
        self.third_party_webview().next().is_some()
    }

    /// Does the app use Custom Tabs?
    pub fn uses_custom_tabs(&self) -> bool {
        self.third_party_ct().next().is_some()
    }

    /// Bitmask over `WEBVIEW_CONTENT_METHODS` of distinct methods called
    /// (third-party sites only) — bit `i` set iff method `i` is used.
    pub fn method_mask(&self) -> u8 {
        self.third_party_webview()
            .fold(0u8, |m, s| m | (1 << s.method_idx))
    }

    /// Distinct method names called (third-party sites only), recovered
    /// from the mask — no symbol resolution involved.
    pub fn methods_used(&self) -> HashSet<&'static str> {
        let mask = self.method_mask();
        WEBVIEW_CONTENT_METHODS
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, m)| *m)
            .collect()
    }

    /// Rewrite every symbol through `f` — used by the pipeline to translate
    /// worker-local symbols into the global table at join time.
    pub fn remap_symbols(&mut self, f: &mut impl FnMut(Symbol) -> Symbol) {
        for s in &mut self.webview_sites {
            s.method = f(s.method);
            s.caller_class = f(s.caller_class);
            if let Some(p) = &mut s.caller_package {
                *p = PkgId(f(p.symbol()));
            }
            if let Some(a) = &mut s.argument {
                *a = f(*a);
            }
        }
        for s in &mut self.ct_sites {
            s.method = f(s.method);
            s.caller_class = f(s.caller_class);
            if let Some(p) = &mut s.caller_package {
                *p = PkgId(f(p.symbol()));
            }
            if let Some(a) = &mut s.argument {
                *a = f(*a);
            }
        }
        for c in &mut self.custom_webview_classes {
            *c = f(*c);
        }
    }
}

/// Run the full per-app pipeline on raw container bytes, with a private
/// single-use context over the paper catalog. Convenience for one-off
/// callers; batch callers should reuse an [`AnalysisCtx`] via
/// [`analyze_app_timed_with`] (symbols are only meaningful against the
/// context that produced them).
///
/// Multi-dex containers are handled the way the paper's tooling handles
/// `classes2.dex`: every dex section is decoded (one broken dex makes the
/// whole app unanalyzable), decompiled sources are pooled for the
/// WebView-subclass closure, and call graphs are built and traversed per
/// dex with the records merged. Cross-dex calls resolve as framework
/// (external) targets — sound for reachability *within* each dex, and the
/// generator keeps behavioural chains dex-local, as R8's main-dex rules do
/// for entry-point code in practice.
pub fn analyze_app(meta: AppMeta, bytes: &[u8]) -> Result<AppAnalysis, ApkError> {
    analyze_app_timed(meta, bytes).0
}

/// [`analyze_app`] plus per-stage wall-clock timings.
pub fn analyze_app_timed(
    meta: AppMeta,
    bytes: &[u8],
) -> (Result<AppAnalysis, ApkError>, StageTimings) {
    let catalog = SdkIndex::paper();
    let mut ctx = AnalysisCtx::new(&catalog);
    analyze_app_timed_with(meta, bytes, &mut ctx)
}

/// The per-app pipeline against a reusable worker context.
///
/// The timings are always returned, even when the result is an error: a
/// broken container still spends (and reports) its decode time, which is
/// what the pipeline's failure-taxonomy throughput accounting wants.
pub fn analyze_app_timed_with(
    meta: AppMeta,
    bytes: &[u8],
    ctx: &mut AnalysisCtx<'_>,
) -> (Result<AppAnalysis, ApkError>, StageTimings) {
    let mut timings = StageTimings::default();
    let started = Instant::now();
    let decoded = Sapk::decode(bytes).and_then(|apk| decode_rest(apk, ctx));
    timings.decode_ns = started.elapsed().as_nanos() as u64;
    finish_analysis(meta, decoded, ctx, timings)
}

/// [`analyze_app_timed_with`] over a shared [`bytes::Bytes`] handle.
///
/// The zero-copy streaming path: when `bytes` is a window into an
/// mmap-backed corpus shard, the container decode and every dex string
/// span alias the mapping directly — no per-app copy of the container is
/// ever made. Results are identical to the slice path
/// ([`Sapk::decode_bytes`] is equivalence-pinned against [`Sapk::decode`]).
pub fn analyze_app_bytes_timed_with(
    meta: AppMeta,
    bytes: bytes::Bytes,
    ctx: &mut AnalysisCtx<'_>,
) -> (Result<AppAnalysis, ApkError>, StageTimings) {
    let mut timings = StageTimings::default();
    let started = Instant::now();
    let decoded =
        Sapk::decode_bytes_with(bytes, ctx.verify_preset).and_then(|apk| decode_rest(apk, ctx));
    timings.decode_ns = started.elapsed().as_nanos() as u64;
    finish_analysis(meta, decoded, ctx, timings)
}

/// Stages (3)–(5) plus summary construction, shared by the slice and
/// shared-buffer entry points.
fn finish_analysis(
    meta: AppMeta,
    decoded: Result<(Manifest, Vec<Dex>), ApkError>,
    ctx: &mut AnalysisCtx<'_>,
    mut timings: StageTimings,
) -> (Result<AppAnalysis, ApkError>, StageTimings) {
    let (manifest, dexes) = match decoded {
        Ok(v) => v,
        Err(e) => return (Err(e), timings),
    };

    // (3) custom WebView classes across all dexes. The closure runs
    // directly on the pooled dex superclass links; the paper-faithful
    // lift-to-Java + re-parse route (`webview_subclasses_interned`) is the
    // oracle it is equivalence-pinned against — see `wla-decompile`.
    let started = Instant::now();
    let subclasses = webview_subclasses_dex_interned(&dexes, &mut ctx.lexicon);
    timings.decompile_ns = started.elapsed().as_nanos() as u64;

    // (4) call graph; (5) traversal + recording — per dex. Recording
    // interns every retained name and labels caller packages in one pass.
    let started = Instant::now();
    let records: Vec<WebCallRecord> = dexes
        .iter()
        .map(|dex| {
            let mut graph = CallGraph::build_with(dex, ctx.use_lut);
            ctx.graph_counters
                .absorb_build(&graph.build_stats(), graph.edge_count());
            // URL-argument provenance rides on the site stream before
            // recording: the dataflow pass by default, the legacy
            // pending-string oracle under ablation.
            if ctx.use_dataflow {
                dataflow::annotate(dex, graph.sites_mut(), &mut ctx.dataflow);
            } else {
                provenance_oracle::annotate(dex, graph.sites_mut());
            }
            let roots = entry_points(&graph, &manifest);
            record_web_calls_with(
                &graph,
                &roots,
                &subclasses,
                ctx.catalog,
                &mut ctx.lexicon,
                &mut ctx.labels,
                &mut ctx.reach,
            )
        })
        .collect();
    timings.callgraph_ns = started.elapsed().as_nanos() as u64;

    // §3.1.3–3.1.4: deep-link exclusion. Non-inserting lookups: a
    // deep-link class no site referenced was never interned and can't
    // match anything.
    let started = Instant::now();
    let deep_link_classes: HashSet<Symbol> = manifest
        .deep_link_activities()
        .iter()
        .filter_map(|c| ctx.lexicon.get(&c.class_name))
        .collect();

    let mut webview_sites = Vec::new();
    let mut ct_sites = Vec::new();
    let mut unreachable_webview_sites = 0usize;
    for record in &records {
        unreachable_webview_sites += record.webview.iter().filter(|s| !s.reachable).count();
        webview_sites.extend(record.webview.iter().filter(|s| s.reachable).map(|s| {
            WebViewSiteSummary {
                method: s.method,
                method_idx: s.method_idx,
                caller_class: s.caller_class,
                caller_package: s.caller_package,
                label: s.label,
                in_deep_link_activity: deep_link_classes.contains(&s.caller_class),
                is_load_method: s.is_load_method,
                argument: s.argument,
                origin: s.origin,
            }
        }));
        ct_sites.extend(
            record
                .custom_tabs
                .iter()
                .filter(|s| s.reachable)
                .map(|s| CtSiteSummary {
                    method: s.method,
                    is_launch: s.is_launch,
                    caller_class: s.caller_class,
                    caller_package: s.caller_package,
                    label: s.label,
                    in_deep_link_activity: deep_link_classes.contains(&s.caller_class),
                    argument: s.argument,
                    origin: s.origin,
                }),
        );
    }

    let mut custom_webview_classes: Vec<Symbol> = subclasses.into_iter().collect();
    custom_webview_classes.sort_by(|a, b| ctx.lexicon.resolve(*a).cmp(ctx.lexicon.resolve(*b)));
    timings.label_ns = started.elapsed().as_nanos() as u64;

    // Sample after every name lookup has run: a dex whose lazy probe table
    // was built had no usable stored table on the wire.
    ctx.decode.lut_rebuilds += dexes.iter().filter(|d| d.lookup_table_rebuilt()).count() as u64;

    let analysis = AppAnalysis {
        package: manifest.package.clone(),
        meta,
        webview_sites,
        ct_sites,
        custom_webview_classes,
        unreachable_webview_sites,
    };
    (Ok(analysis), timings)
}

/// Manifest + dex decoding over an already-decoded container. Dex decoding
/// is zero-copy: each section's `Bytes` handle is shared with the dex's
/// span table, so no string data is copied out of the container buffer.
/// The context's [`VerifyPreset`] governs how much re-validation each dex
/// gets, and its `use_lut` knob decides whether stored lookup tables are
/// kept; both are tallied into [`AnalysisCtx::decode`].
fn decode_rest(apk: Sapk, ctx: &mut AnalysisCtx<'_>) -> Result<(Manifest, Vec<Dex>), ApkError> {
    let manifest: Manifest = wireformat::decode(apk.manifest_bytes()?)?;
    let mut dexes: Vec<Dex> = Vec::new();
    for s in apk
        .sections()
        .iter()
        .filter(|s| s.tag == wla_apk::SectionTag::Dex)
    {
        let mut dex = Dex::decode_bytes_with(s.data.clone(), ctx.verify_preset)?;
        match ctx.verify_preset {
            VerifyPreset::All => ctx.decode.full += 1,
            VerifyPreset::ChecksumOnly => ctx.decode.checksum_only += 1,
            VerifyPreset::None => ctx.decode.trusted += 1,
        }
        if !ctx.use_lut {
            dex.discard_lookup_table();
        }
        if dex.has_lookup_table() {
            ctx.decode.lut_present += 1;
        }
        dexes.push(dex);
    }
    if dexes.is_empty() {
        return Err(ApkError::MissingSection("dex"));
    }
    Ok((manifest, dexes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wla_corpus::ecosystem::{Ecosystem, MethodSet};
    use wla_corpus::lowering::lower;
    use wla_corpus::playstore::PlayCategory;
    use wla_corpus::EcosystemParams;

    fn meta() -> AppMeta {
        AppMeta {
            package: "com.testapp.example".into(),
            on_play_store: true,
            downloads: 1_000_000,
            category: PlayCategory::Tools,
            last_update_day: 800,
        }
    }

    fn sample_spec(seed: u64) -> (SdkIndex, wla_corpus::AppSpec) {
        let catalog = SdkIndex::paper();
        let eco = Ecosystem::new(&catalog, EcosystemParams::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = eco.sample_app(&mut rng, meta());
        (catalog, spec)
    }

    #[test]
    fn recovers_ground_truth_per_app() {
        // Over a batch of sampled apps, the pipeline's webview/ct verdicts
        // must exactly match the planted ground truth.
        for seed in 0..60 {
            let (catalog, spec) = sample_spec(seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let bytes = lower(&spec, &catalog, &mut rng).encode();
            let analysis = analyze_app(meta(), &bytes).expect("analyzes");
            assert_eq!(
                analysis.uses_webview(),
                spec.uses_webview(&catalog),
                "webview mismatch at seed {seed}"
            );
            assert_eq!(
                analysis.uses_custom_tabs(),
                spec.uses_custom_tabs(),
                "ct mismatch at seed {seed}"
            );
        }
    }

    #[test]
    fn method_census_matches_ground_truth() {
        for seed in 0..40 {
            let (catalog, spec) = sample_spec(seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let bytes = lower(&spec, &catalog, &mut rng).encode();
            let analysis = analyze_app(meta(), &bytes).unwrap();
            let truth: HashSet<&str> = spec.method_census(&catalog).names().collect();
            let measured = analysis.methods_used();
            assert_eq!(measured, truth, "seed {seed}");
        }
    }

    #[test]
    fn url_arguments_resolve_despite_register_shuffling() {
        // The lowering interleaves decoy constants, moves, nops, and
        // branch diamonds around every URL call; the dataflow pass must
        // still pin each one to its single constant.
        let mut sites_seen = 0usize;
        for seed in 0..20 {
            let (catalog, spec) = sample_spec(seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let bytes = lower(&spec, &catalog, &mut rng).encode();
            let mut ctx = AnalysisCtx::new(&catalog);
            let analysis = analyze_app_timed_with(meta(), &bytes, &mut ctx).0.unwrap();
            for s in analysis.webview_sites.iter().filter(|s| s.is_load_method) {
                assert_eq!(s.origin, UrlOrigin::Resolved, "seed {seed}");
                let arg = ctx.lexicon.resolve(s.argument.expect("resolved argument"));
                assert!(!arg.is_empty(), "seed {seed}");
                sites_seen += 1;
            }
            for s in analysis.ct_sites.iter().filter(|s| s.is_launch) {
                assert_eq!(s.origin, UrlOrigin::Resolved, "seed {seed}");
                assert!(s.argument.is_some());
                sites_seen += 1;
            }
            assert!(ctx.dataflow.methods > 0);
            assert!(ctx.dataflow.iterations >= ctx.dataflow.blocks);
        }
        assert!(sites_seen > 0, "corpus sample must contain URL sites");
    }

    #[test]
    fn ablated_pending_string_oracle_resolves_nothing_shuffled() {
        // Under ablation (the legacy single-pending-string heuristic) the
        // register shuffle defeats every site: the move chain between the
        // const-string and the invoke always clears the pending string.
        let mut sites_seen = 0usize;
        for seed in 0..20 {
            let (catalog, spec) = sample_spec(seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let bytes = lower(&spec, &catalog, &mut rng).encode();
            let mut ctx = AnalysisCtx::new(&catalog);
            ctx.use_dataflow = false;
            let analysis = analyze_app_timed_with(meta(), &bytes, &mut ctx).0.unwrap();
            for s in analysis.webview_sites.iter().filter(|s| s.is_load_method) {
                assert_eq!(s.origin, UrlOrigin::Unknown, "seed {seed}");
                assert!(s.argument.is_none());
                sites_seen += 1;
            }
            assert_eq!(ctx.dataflow.methods, 0, "ablation must skip the pass");
        }
        assert!(sites_seen > 0);
    }

    #[test]
    fn dead_code_not_counted() {
        let (catalog, mut spec) = sample_spec(1);
        spec.sdks.clear();
        spec.direct_wv_methods = MethodSet::EMPTY;
        spec.direct_wv_subclass = false;
        spec.direct_ct = false;
        spec.deep_link = None;
        spec.dead_code_webview = true;
        let mut rng = StdRng::seed_from_u64(1);
        let bytes = lower(&spec, &catalog, &mut rng).encode();
        let analysis = analyze_app(meta(), &bytes).unwrap();
        assert!(!analysis.uses_webview());
        assert_eq!(analysis.unreachable_webview_sites, 1);
    }

    #[test]
    fn deep_link_webview_excluded() {
        let (catalog, mut spec) = sample_spec(2);
        spec.sdks.clear();
        spec.direct_wv_methods = MethodSet::EMPTY;
        spec.direct_wv_subclass = false;
        spec.direct_ct = false;
        spec.dead_code_webview = false;
        spec.deep_link = Some(wla_corpus::DeepLinkSpec {
            host: "firstparty.example.com".into(),
            uses_webview: true,
        });
        let mut rng = StdRng::seed_from_u64(2);
        let bytes = lower(&spec, &catalog, &mut rng).encode();
        let analysis = analyze_app(meta(), &bytes).unwrap();
        // The loadUrl call exists and is reachable, but it's first-party.
        assert_eq!(analysis.webview_sites.len(), 1);
        assert!(analysis.webview_sites[0].in_deep_link_activity);
        assert!(!analysis.uses_webview());
    }

    #[test]
    fn subclass_attribution_works() {
        let (catalog, mut spec) = sample_spec(3);
        spec.sdks.clear();
        spec.direct_wv_methods = MethodSet::load_url_only();
        spec.direct_wv_subclass = true;
        spec.direct_ct = false;
        spec.deep_link = None;
        spec.dead_code_webview = false;
        let mut rng = StdRng::seed_from_u64(3);
        let bytes = lower(&spec, &catalog, &mut rng).encode();
        let mut ctx = AnalysisCtx::new(&catalog);
        let analysis = analyze_app_timed_with(meta(), &bytes, &mut ctx).0.unwrap();
        assert!(analysis.uses_webview());
        let resolved: Vec<&str> = analysis
            .custom_webview_classes
            .iter()
            .map(|s| ctx.lexicon.resolve(*s))
            .collect();
        assert_eq!(resolved, vec!["com/testapp/example/web/AppWebView"]);
    }

    #[test]
    fn corrupted_bytes_error() {
        let (catalog, spec) = sample_spec(4);
        let mut rng = StdRng::seed_from_u64(4);
        let bytes = lower(&spec, &catalog, &mut rng).encode();
        let bad = wla_apk::corrupt::corrupt(
            &bytes,
            wla_apk::corrupt::CorruptionKind::Truncate { keep_num: 100 },
        );
        assert!(analyze_app(meta(), &bad).is_err());
    }

    #[test]
    fn sdk_caller_packages_extracted() {
        let (catalog, mut spec) = sample_spec(5);
        // Force exactly AppLovin.
        let applovin = catalog
            .sdks()
            .iter()
            .position(|s| s.name == "AppLovin")
            .unwrap();
        spec.sdks = vec![wla_corpus::SdkUse {
            sdk_idx: applovin,
            webview: true,
            custom_tabs: false,
        }];
        spec.sdk_category_methods = vec![(
            wla_sdk_index::SdkCategory::Advertising,
            MethodSet::load_url_only(),
        )];
        spec.direct_wv_methods = MethodSet::EMPTY;
        spec.direct_wv_subclass = false;
        spec.direct_ct = false;
        spec.deep_link = None;
        spec.dead_code_webview = false;
        let mut rng = StdRng::seed_from_u64(5);
        let bytes = lower(&spec, &catalog, &mut rng).encode();
        let mut ctx = AnalysisCtx::new(&catalog);
        let analysis = analyze_app_timed_with(meta(), &bytes, &mut ctx).0.unwrap();
        let load_packages: HashSet<&str> = analysis
            .third_party_webview()
            .filter(|s| s.is_load_method)
            .filter_map(|s| s.caller_package)
            .map(|p| ctx.lexicon.resolve(p.symbol()))
            .collect();
        assert!(
            load_packages.iter().all(|p| p.starts_with("com.applovin")),
            "{load_packages:?}"
        );
        assert!(!load_packages.is_empty());
        // Record-time labels agree: every AppLovin caller is Sdk-labeled.
        assert!(analysis
            .third_party_webview()
            .filter(|s| s.is_load_method)
            .all(|s| matches!(s.label, LabelId::Sdk(i) if i as usize == applovin)));
    }
}

#[cfg(test)]
mod multidex_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wla_corpus::ecosystem::Ecosystem;
    use wla_corpus::lowering::lower;
    use wla_corpus::playstore::PlayCategory;
    use wla_corpus::EcosystemParams;

    fn meta() -> AppMeta {
        AppMeta {
            package: "com.multidex.app".into(),
            on_play_store: true,
            downloads: 900_000_000,
            category: PlayCategory::Social,
            last_update_day: 1_000,
        }
    }

    /// Build an app guaranteed to be multi-dex (noise_classes >= 6) with
    /// dead code in the secondary dex.
    fn multidex_app() -> (SdkIndex, wla_corpus::AppSpec, Vec<u8>) {
        let catalog = SdkIndex::paper();
        let eco = Ecosystem::new(&catalog, EcosystemParams::default());
        let mut rng = StdRng::seed_from_u64(99);
        let mut spec = eco.sample_app(&mut rng, meta());
        spec.noise_classes = 8;
        spec.dead_code_webview = true;
        let bytes = lower(&spec, &catalog, &mut rng).encode().to_vec();
        (catalog, spec, bytes)
    }

    #[test]
    fn container_actually_has_two_dex_sections() {
        let (_, _, bytes) = multidex_app();
        let apk = Sapk::decode(&bytes).unwrap();
        let dex_sections = apk
            .sections()
            .iter()
            .filter(|s| s.tag == wla_apk::SectionTag::Dex)
            .count();
        assert_eq!(dex_sections, 2);
    }

    #[test]
    fn multidex_analysis_matches_ground_truth() {
        let (catalog, spec, bytes) = multidex_app();
        let analysis = analyze_app(meta(), &bytes).unwrap();
        assert_eq!(analysis.uses_webview(), spec.uses_webview(&catalog));
        assert_eq!(analysis.uses_custom_tabs(), spec.uses_custom_tabs());
        let truth: HashSet<&str> = spec.method_census(&catalog).names().collect();
        assert_eq!(analysis.methods_used(), truth);
        // The dead class lives in classes2.dex and stays dead.
        assert_eq!(analysis.unreachable_webview_sites, 1);
    }

    #[test]
    fn corrupt_secondary_dex_breaks_the_app() {
        let (_, _, bytes) = multidex_app();
        // Flip a byte near the end of the container, where the secondary
        // dex and resources live; container checksum catches it.
        let mut bad = bytes.clone();
        let i = bad.len() - 40;
        bad[i] ^= 0x20;
        assert!(analyze_app(meta(), &bad).is_err());
    }
}
