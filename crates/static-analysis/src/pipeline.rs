//! Parallel corpus runner.
//!
//! Static analysis is CPU-bound, so the runner is a fixed pool of scoped
//! crossbeam threads pulling app indices from an atomic counter — no async
//! runtime, per the project's networking guides ("use threads for CPU-bound
//! work"). Results keep corpus order regardless of scheduling.

use crate::analyze::{analyze_app, AppAnalysis};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use wla_apk::ApkError;
use wla_corpus::playstore::AppMeta;

/// One corpus entry: the metadata the Play Store provides plus the raw
/// container bytes fetched from the archive.
#[derive(Debug, Clone)]
pub struct CorpusInput {
    /// Play metadata.
    pub meta: AppMeta,
    /// SAPK container bytes.
    pub bytes: Vec<u8>,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineConfig {
    /// Worker thread count (0 ⇒ available parallelism).
    pub workers: usize,
}

impl PipelineConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
    }
}

/// Pipeline output: per-app results in input order plus failure accounting.
#[derive(Debug)]
pub struct PipelineOutput {
    /// Per-app analysis or decode error, in input order.
    pub results: Vec<Result<AppAnalysis, ApkError>>,
}

impl PipelineOutput {
    /// Successfully analyzed apps.
    pub fn analyzed(&self) -> impl Iterator<Item = &AppAnalysis> {
        self.results.iter().filter_map(|r| r.as_ref().ok())
    }

    /// Number of successfully analyzed apps.
    pub fn analyzed_count(&self) -> usize {
        self.analyzed().count()
    }

    /// Number of broken containers (Table 2's 242).
    pub fn broken_count(&self) -> usize {
        self.results.iter().filter(|r| r.is_err()).count()
    }
}

/// Analyze every corpus entry, in parallel.
pub fn run_pipeline(inputs: &[CorpusInput], config: PipelineConfig) -> PipelineOutput {
    let n = inputs.len();
    let mut slots: Vec<Option<Result<AppAnalysis, ApkError>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots = Mutex::new(slots);
    let next = AtomicUsize::new(0);
    let workers = config.effective_workers().min(n.max(1));

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let input = &inputs[i];
                let result = analyze_app(input.meta.clone(), &input.bytes);
                slots.lock()[i] = Some(result);
            });
        }
    })
    .expect("analysis worker panicked");

    let results = slots
        .into_inner()
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect();
    PipelineOutput { results }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wla_corpus::{CorpusConfig, Generator};
    use wla_sdk_index::SdkIndex;

    fn inputs(scale: u32, seed: u64, corrupt: f64) -> Vec<CorpusInput> {
        let catalog = SdkIndex::paper();
        let cfg = CorpusConfig {
            scale,
            seed,
            corrupt_fraction: corrupt,
            ..CorpusConfig::default()
        };
        Generator::new(&catalog, cfg)
            .generate()
            .into_iter()
            .map(|g| CorpusInput {
                meta: g.spec.meta.clone(),
                bytes: g.bytes,
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial() {
        let ins = inputs(2_000, 11, 0.1);
        let par = run_pipeline(&ins, PipelineConfig { workers: 8 });
        let ser = run_pipeline(&ins, PipelineConfig { workers: 1 });
        assert_eq!(par.results.len(), ser.results.len());
        for (a, b) in par.results.iter().zip(&ser.results) {
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x, y),
                (Err(x), Err(y)) => assert_eq!(x, y),
                other => panic!("mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn broken_fraction_counted() {
        let ins = inputs(2_000, 3, 0.25);
        let out = run_pipeline(&ins, PipelineConfig::default());
        assert_eq!(out.results.len(), ins.len());
        assert!(out.broken_count() > 0);
        assert_eq!(out.analyzed_count() + out.broken_count(), ins.len());
    }

    #[test]
    fn empty_corpus_ok() {
        let out = run_pipeline(&[], PipelineConfig::default());
        assert_eq!(out.results.len(), 0);
        assert_eq!(out.broken_count(), 0);
    }
}
