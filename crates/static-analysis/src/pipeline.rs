//! Fault-isolated, instrumented parallel corpus runner.
//!
//! Static analysis is CPU-bound, so the runner is a fixed pool of scoped
//! threads claiming *batches* of app indices from one atomic counter — no
//! async runtime, per the project's networking guides ("use threads for
//! CPU-bound work"). Three properties the paper's scale (146.8K apps,
//! Table 2) demands of it:
//!
//! - **Fault isolation.** Each per-app analysis runs under
//!   [`std::panic::catch_unwind`]; a panicking container becomes an
//!   [`ApkError::AnalysisPanic`] result feeding the broken-apps row
//!   instead of aborting the whole corpus run.
//! - **Contention-free output.** Workers append to private buffers that
//!   are merged into input order after the pool joins; nothing shares a
//!   mutex on the hot path, and batch claiming amortizes the one shared
//!   atomic across [`PipelineConfig::batch`] apps.
//! - **Observability.** [`PipelineStats`] carries per-stage timers,
//!   per-worker counters, interner counters, throughput, and a failure
//!   taxonomy, surfaced through [`PipelineOutput::stats`] and rendered by
//!   `wla-report`.
//!
//! Interned-IR lifecycle: each worker interns into a private
//! [`LocalInterner`] (no synchronization while analyzing); at join time
//! the serial tail (timed as [`PipelineStats::serial_tail_ns`]) merges
//! worker buffers into input order and translates every symbol into the
//! shared global [`Interner`] in three phases: a symbols-only pass in
//! *input order* records each worker's first occurrences, the distinct
//! strings are interned as one ordered batch into a table pre-sized from
//! the summed lexicon sizes ([`Interner::intern_ordered`] — ids match a
//! serial loop exactly, and wide hosts fill shards concurrently), and the
//! resolved per-worker [`SymbolRemap`] tables rewrite the analyses.
//! Because first-occurrence order is the input order, global symbol ids
//! are a pure function of the corpus — independent of worker count, batch
//! size, and scheduling — which keeps parallel and serial runs
//! bit-identical.

use crate::analyze::{
    analyze_app_timed_with, AnalysisCtx, AppAnalysis, DecodeCounters, StageTimings,
};
use crate::dataflow::DataflowCounters;
use crate::stream::StreamCounters;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use wla_apk::{ApkError, VerifyPreset};
use wla_callgraph::CallGraphCounters;
use wla_corpus::playstore::AppMeta;
use wla_intern::{Interner, LocalInterner, SymbolRemap, SymbolTable};
use wla_sdk_index::SdkIndex;

/// One corpus entry: the metadata the Play Store provides plus the raw
/// container bytes fetched from the archive.
#[derive(Debug, Clone)]
pub struct CorpusInput {
    /// Play metadata.
    pub meta: AppMeta,
    /// SAPK container bytes.
    pub bytes: Vec<u8>,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Worker thread count (0 ⇒ available parallelism).
    pub workers: usize,
    /// App indices claimed per `fetch_add` (0 ⇒ auto-size: enough batches
    /// for ~8 claims per worker, clamped to `1..=32`).
    pub batch: usize,
    /// Collect per-stage timers into [`PipelineStats::stage`]. Costs four
    /// monotonic-clock reads per app; disable for pure-throughput runs.
    pub stage_timings: bool,
    /// Resolve URL provenance with the constant-propagation pass
    /// (default). `false` ablates to the linear pending-string heuristic
    /// — the bench knob behind EXPERIMENTS.md's provenance table.
    pub use_dataflow: bool,
    /// Decode-time verification depth per container. Defaults to
    /// [`VerifyPreset::All`] — the corruption-facing setting. The trusted
    /// presets are *only* sound on corpora whose bytes were validated
    /// end-to-end already (a just-generated corpus, a resume-stamped
    /// shard with no planted corruption); a corrupt-fraction corpus under
    /// a trusted preset will misclassify broken apps.
    pub verify_preset: VerifyPreset,
    /// Keep wire-format type lookup tables and bind virtual calls through
    /// hash vtables (default). `false` ablates both to their linear /
    /// binary-search counterparts.
    pub use_lut: bool,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            workers: 0,
            batch: 0,
            stage_timings: true,
            use_dataflow: true,
            verify_preset: VerifyPreset::All,
            use_lut: true,
        }
    }
}

impl PipelineConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
    }

    fn effective_batch(&self, n: usize, workers: usize) -> usize {
        if self.batch > 0 {
            self.batch
        } else {
            (n / (workers * 8).max(1)).clamp(1, 32)
        }
    }
}

/// Per-worker counters: how evenly the batch scheduler spread the corpus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Apps this worker analyzed.
    pub apps: usize,
    /// Batches this worker claimed.
    pub batches: usize,
    /// Wall-clock nanoseconds spent inside claimed batches.
    pub busy_ns: u64,
}

/// Interning observability for one run: how much string work the corpus
/// generated and how well the worker-local memos absorbed it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternerCounters {
    /// Distinct symbols in the merged global table.
    pub global_symbols: usize,
    /// Bytes of distinct strings in the global table.
    pub global_bytes: usize,
    /// Distinct symbols summed over worker-local interners (≥ global:
    /// workers re-discover shared names independently).
    pub local_symbols: usize,
    /// Bytes summed over worker-local interners.
    pub local_bytes: usize,
    /// Worker-local intern calls that found the string already present.
    pub local_hits: u64,
    /// Worker-local intern calls that inserted a new string.
    pub local_misses: u64,
    /// Package labels served from the per-worker memo.
    pub label_hits: u64,
    /// Package labels that walked the catalog trie.
    pub label_misses: u64,
    /// Capacity the global table was pre-sized for at join time (the
    /// summed sizes of the worker lexicons).
    pub presized_symbols: usize,
}

impl InternerCounters {
    /// Fraction of intern calls absorbed by worker-local tables.
    pub fn local_hit_rate(&self) -> f64 {
        let total = self.local_hits + self.local_misses;
        if total == 0 {
            return 0.0;
        }
        self.local_hits as f64 / total as f64
    }

    /// Fraction of the pre-sized global capacity actually used
    /// (`global_symbols / presized_symbols`): how closely the summed
    /// local-lexicon upper bound predicted the merged table.
    pub fn presize_hit_rate(&self) -> f64 {
        if self.presized_symbols == 0 {
            return 0.0;
        }
        self.global_symbols as f64 / self.presized_symbols as f64
    }

    /// Fraction of package-label lookups served from the memo.
    pub fn label_hit_rate(&self) -> f64 {
        let total = self.label_hits + self.label_misses;
        if total == 0 {
            return 0.0;
        }
        self.label_hits as f64 / total as f64
    }
}

/// Run-level observability: totals, failure taxonomy, per-stage timers,
/// per-worker counters, and throughput.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Corpus size (`analyzed + broken`).
    pub total: usize,
    /// Apps that analyzed successfully.
    pub analyzed: usize,
    /// Apps whose container failed to decode or whose analysis failed
    /// (Table 2's broken row — includes `panicked`).
    pub broken: usize,
    /// Apps whose analysis panicked and was converted to
    /// [`ApkError::AnalysisPanic`] by the fault isolation.
    pub panicked: usize,
    /// Per-stage analysis time summed over all apps (zero when
    /// [`PipelineConfig::stage_timings`] is off).
    pub stage: StageTimings,
    /// End-to-end wall-clock time of the run.
    pub wall_ns: u64,
    /// Time spent in the serial join tail after the worker pool finished:
    /// stats fold, input-order merge, and the local→global symbol remap.
    pub serial_tail_ns: u64,
    /// Batch size the scheduler actually used.
    pub batch: usize,
    /// One entry per worker thread, in spawn order.
    pub workers: Vec<WorkerStats>,
    /// Failure counts keyed by [`ApkError::kind`] label.
    pub failure_kinds: BTreeMap<&'static str, usize>,
    /// Interned-IR counters for the run.
    pub interner: InternerCounters,
    /// Call-graph counters for the run (CSR edges, vtable cache, bitset
    /// scratch reuse), merged across workers.
    pub callgraph: CallGraphCounters,
    /// Constant-propagation counters (basic blocks, fixpoint iterations,
    /// resolved/unknown/conflict invokes), merged across workers.
    pub dataflow: DataflowCounters,
    /// Dex-decode counters (per-preset decodes, lookup-table presence and
    /// lazy rebuilds), merged across workers.
    pub decode: DecodeCounters,
    /// Shard-streaming counters; all-zero for the in-memory path.
    pub stream: StreamCounters,
}

impl PipelineStats {
    /// Corpus throughput over the whole run.
    pub fn apps_per_second(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.total as f64 / (self.wall_ns as f64 * 1e-9)
    }

    /// Total busy time across workers (CPU-seconds spent analyzing).
    pub fn busy_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns).sum()
    }

    /// Pool utilization: busy time over `workers × wall` (1.0 = perfectly
    /// balanced, no idle tails).
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall_ns.saturating_mul(self.workers.len() as u64);
        if capacity == 0 {
            return 0.0;
        }
        self.busy_ns() as f64 / capacity as f64
    }
}

/// Pipeline output: per-app results in input order, run statistics, and
/// the global symbol table every surviving [`AppAnalysis`] resolves
/// against.
#[derive(Debug)]
pub struct PipelineOutput {
    /// Per-app analysis or decode error, in input order. Symbols are
    /// global (already remapped).
    pub results: Vec<Result<AppAnalysis, ApkError>>,
    /// Observability counters for the run.
    pub stats: PipelineStats,
    /// Merged global interner.
    pub interner: Interner,
}

impl PipelineOutput {
    /// Successfully analyzed apps.
    pub fn analyzed(&self) -> impl Iterator<Item = &AppAnalysis> {
        self.results.iter().filter_map(|r| r.as_ref().ok())
    }

    /// Number of successfully analyzed apps.
    pub fn analyzed_count(&self) -> usize {
        self.analyzed().count()
    }

    /// Number of broken containers (Table 2's 242).
    pub fn broken_count(&self) -> usize {
        self.results.iter().filter(|r| r.is_err()).count()
    }

    /// Display-time symbol snapshot — the report boundary's only way to
    /// turn a [`wla_intern::Symbol`] back into text.
    pub fn symbols(&self) -> SymbolTable {
        self.interner.snapshot()
    }
}

/// Render a panic payload as text for [`ApkError::AnalysisPanic`].
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// What one worker brings back to the merge step. Shared with the
/// shard-streaming driver in [`crate::stream`], whose workers produce the
/// same yields keyed by global entry index.
pub(crate) struct WorkerYield {
    /// `(input index, result)` pairs, in claim order. Symbols inside are
    /// local to this worker's `lexicon`.
    pub(crate) results: Vec<(usize, Result<AppAnalysis, ApkError>)>,
    pub(crate) stats: WorkerStats,
    pub(crate) stage: StageTimings,
    pub(crate) failures: BTreeMap<&'static str, usize>,
    pub(crate) panicked: usize,
    /// The worker's private interner; consumed by the join-time remap.
    pub(crate) lexicon: LocalInterner,
    /// Package-label memo hits/misses.
    pub(crate) label_hits: u64,
    pub(crate) label_misses: u64,
    /// Call-graph build + traversal counters for this worker's shard.
    pub(crate) callgraph: CallGraphCounters,
    /// Constant-propagation counters for this worker's shard.
    pub(crate) dataflow: DataflowCounters,
    /// Dex-decode counters for this worker's shard.
    pub(crate) decode: DecodeCounters,
}

impl WorkerYield {
    /// An empty yield with a fresh lexicon.
    pub(crate) fn empty() -> WorkerYield {
        WorkerYield {
            results: Vec::new(),
            stats: WorkerStats::default(),
            stage: StageTimings::default(),
            failures: BTreeMap::new(),
            panicked: 0,
            lexicon: LocalInterner::new(),
            label_hits: 0,
            label_misses: 0,
            callgraph: CallGraphCounters::default(),
            dataflow: DataflowCounters::default(),
            decode: DecodeCounters::default(),
        }
    }
}

/// Analyze every corpus entry, in parallel, labeling against `catalog`.
pub fn run_pipeline(
    inputs: &[CorpusInput],
    catalog: &SdkIndex,
    config: PipelineConfig,
) -> PipelineOutput {
    run_pipeline_with(inputs, catalog, config, |input, ctx| {
        analyze_app_timed_with(input.meta.clone(), &input.bytes, ctx)
    })
}

/// [`run_pipeline`] with a caller-supplied analysis function.
///
/// The scheduler, fault isolation, interner merge, and stats collection
/// are identical to [`run_pipeline`]; only the per-app work differs. Tests
/// use this to inject deliberately panicking analyses; ablation benches
/// use it to isolate scheduler overhead from analysis cost. The analysis
/// function receives the worker's [`AnalysisCtx`] and must intern every
/// symbol its result carries into `ctx.lexicon`.
pub fn run_pipeline_with<F>(
    inputs: &[CorpusInput],
    catalog: &SdkIndex,
    config: PipelineConfig,
    analyze: F,
) -> PipelineOutput
where
    F: Fn(&CorpusInput, &mut AnalysisCtx<'_>) -> (Result<AppAnalysis, ApkError>, StageTimings)
        + Sync,
{
    let n = inputs.len();
    let workers = config.effective_workers().min(n.max(1));
    let batch = config.effective_batch(n, workers);
    let started = Instant::now();
    let next = AtomicUsize::new(0);
    let analyze = &analyze;

    let yields: Vec<WorkerYield> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut ctx = AnalysisCtx::new(catalog);
                    ctx.use_dataflow = config.use_dataflow;
                    ctx.verify_preset = config.verify_preset;
                    ctx.use_lut = config.use_lut;
                    let mut y = WorkerYield::empty();
                    loop {
                        let start = next.fetch_add(batch, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + batch).min(n);
                        y.stats.batches += 1;
                        let claimed = Instant::now();
                        for (i, input) in inputs.iter().enumerate().take(end).skip(start) {
                            let outcome =
                                catch_unwind(AssertUnwindSafe(|| analyze(input, &mut ctx)));
                            let result = match outcome {
                                Ok((result, timings)) => {
                                    if config.stage_timings {
                                        y.stage.accumulate(&timings);
                                    }
                                    result
                                }
                                Err(payload) => {
                                    y.panicked += 1;
                                    Err(ApkError::AnalysisPanic {
                                        message: panic_message(payload),
                                    })
                                }
                            };
                            if let Err(e) = &result {
                                *y.failures.entry(e.kind()).or_insert(0) += 1;
                            }
                            y.stats.apps += 1;
                            y.results.push((i, result));
                        }
                        y.stats.busy_ns += claimed.elapsed().as_nanos() as u64;
                    }
                    y.callgraph = ctx.callgraph_counters();
                    y.dataflow = ctx.dataflow;
                    y.decode = ctx.decode;
                    y.lexicon = ctx.lexicon;
                    y.label_hits = ctx.labels.hits;
                    y.label_misses = ctx.labels.misses;
                    y
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("worker bodies cannot panic: analysis is wrapped in catch_unwind")
            })
            .collect()
    });

    join_worker_yields(n, batch, started, yields)
}

/// The serial join tail: merge worker buffers into input order, fold the
/// stats, and translate worker-local symbols into one global table.
///
/// Shared between [`run_pipeline_with`] (whose workers claim index
/// batches) and the shard-streaming driver in [`crate::stream`] (whose
/// workers claim whole shards and key results by global entry index) —
/// both produce [`WorkerYield`]s, so the deterministic input-order symbol
/// remap below makes their outputs bit-identical for the same corpus.
pub(crate) fn join_worker_yields(
    n: usize,
    batch: usize,
    started: Instant,
    yields: Vec<WorkerYield>,
) -> PipelineOutput {
    // Everything from here to return runs on one thread after the pool
    // joins — the serial tail `stats.serial_tail_ns` exposes.
    let tail_started = Instant::now();

    // Merge per-worker buffers back into input order and fold the stats.
    // Each worker's buffer is already ascending in input index (batches
    // are claimed from a monotone counter and appended in claim order),
    // so one flat extend + sort is a k-way merge of sorted runs with no
    // intermediate `Vec<Option<_>>`. Entries remember which worker
    // produced them so the remap below can consult the right lexicon.
    let mut merged: Vec<(usize, u32, Result<AppAnalysis, ApkError>)> = Vec::with_capacity(n);
    let mut stats = PipelineStats {
        total: n,
        batch,
        ..PipelineStats::default()
    };
    let mut lexicons: Vec<LocalInterner> = Vec::with_capacity(yields.len());
    for (w, y) in yields.into_iter().enumerate() {
        merged.extend(y.results.into_iter().map(|(i, r)| (i, w as u32, r)));
        stats.stage.accumulate(&y.stage);
        stats.panicked += y.panicked;
        for (kind, count) in y.failures {
            *stats.failure_kinds.entry(kind).or_insert(0) += count;
        }
        stats.workers.push(y.stats);
        stats.interner.local_symbols += y.lexicon.len();
        stats.interner.local_bytes += y.lexicon.bytes();
        stats.interner.local_hits += y.lexicon.hits();
        stats.interner.local_misses += y.lexicon.misses();
        stats.interner.label_hits += y.label_hits;
        stats.interner.label_misses += y.label_misses;
        stats.callgraph.merge(&y.callgraph);
        stats.dataflow.merge(&y.dataflow);
        stats.decode.merge(&y.decode);
        lexicons.push(y.lexicon);
    }
    merged.sort_unstable_by_key(|&(i, _, _)| i);
    assert_eq!(merged.len(), n, "batch claiming covers every index");
    debug_assert!(
        merged.iter().enumerate().all(|(pos, &(i, _, _))| pos == i),
        "batch claiming covers every index exactly once"
    );

    // Translate worker-local symbols into the global table in three
    // phases, preserving the schedule-independent id assignment a lazy
    // input-order walk would produce:
    //  (A) a symbols-only pass in input order records each worker's first
    //      occurrences and their global rank;
    //  (B) the distinct strings are interned in rank order as one batch —
    //      `intern_ordered` assigns exactly the ids a serial loop would,
    //      into a table pre-sized from the summed lexicon sizes;
    //  (C) the resolved remap tables rewrite every analysis.
    let interner = Interner::with_capacity(stats.interner.local_symbols);
    stats.interner.presized_symbols = stats.interner.local_symbols;
    let mut ranks: Vec<Vec<u32>> = lexicons.iter().map(|l| vec![u32::MAX; l.len()]).collect();
    let mut order: Vec<(u32, wla_intern::Symbol)> = Vec::new();
    for (_, w, result) in merged.iter_mut() {
        if let Ok(analysis) = result.as_mut() {
            let rank = &mut ranks[*w as usize];
            analysis.remap_symbols(&mut |sym| {
                if rank[sym.0 as usize] == u32::MAX {
                    rank[sym.0 as usize] = order.len() as u32;
                    order.push((*w, sym));
                }
                sym
            });
        }
    }
    let arcs: Vec<std::sync::Arc<str>> = order
        .iter()
        .map(|&(w, sym)| lexicons[w as usize].resolve_arc(sym))
        .collect();
    let globals = interner.intern_ordered(&arcs);
    let mut remaps: Vec<SymbolRemap> = lexicons.iter().map(|l| SymbolRemap::new(l.len())).collect();
    for (rank, &(w, sym)) in order.iter().enumerate() {
        remaps[w as usize].set(sym, globals[rank]);
    }
    let results: Vec<Result<AppAnalysis, ApkError>> = merged
        .into_iter()
        .map(|(_, w, mut result)| {
            if let Ok(analysis) = &mut result {
                let remap = &remaps[w as usize];
                analysis.remap_symbols(&mut |sym| {
                    remap.get(sym).expect("phase A visited every symbol")
                });
            }
            result
        })
        .collect();
    stats.interner.global_symbols = interner.len();
    stats.interner.global_bytes = interner.bytes();
    stats.broken = results.iter().filter(|r| r.is_err()).count();
    stats.analyzed = n - stats.broken;
    stats.serial_tail_ns = tail_started.elapsed().as_nanos() as u64;
    stats.wall_ns = started.elapsed().as_nanos() as u64;
    PipelineOutput {
        results,
        stats,
        interner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use wla_corpus::{CorpusConfig, Generator};

    fn inputs(catalog: &SdkIndex, scale: u32, seed: u64, corrupt: f64) -> Vec<CorpusInput> {
        let cfg = CorpusConfig {
            scale,
            seed,
            corrupt_fraction: corrupt,
            ..CorpusConfig::default()
        };
        Generator::new(catalog, cfg)
            .generate()
            .into_iter()
            .map(|g| CorpusInput {
                meta: g.spec.meta.clone(),
                bytes: g.bytes,
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial() {
        let catalog = SdkIndex::paper();
        let ins = inputs(&catalog, 2_000, 11, 0.1);
        let par = run_pipeline(
            &ins,
            &catalog,
            PipelineConfig {
                workers: 8,
                ..PipelineConfig::default()
            },
        );
        let ser = run_pipeline(
            &ins,
            &catalog,
            PipelineConfig {
                workers: 1,
                ..PipelineConfig::default()
            },
        );
        assert_eq!(par.results.len(), ser.results.len());
        // The input-order remap makes global symbol ids — and therefore
        // whole analyses — bit-identical across worker counts.
        for (a, b) in par.results.iter().zip(&ser.results) {
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x, y),
                (Err(x), Err(y)) => assert_eq!(x, y),
                other => panic!("mismatch {other:?}"),
            }
        }
        // Dataflow counters are per-app sums, so worker count and
        // scheduling cannot change them (metamorphic provenance pin).
        assert_eq!(par.stats.dataflow, ser.stats.dataflow);
        assert!(par.stats.dataflow.resolved_sites > 0);
        // And the global tables agree symbol-for-symbol.
        assert_eq!(par.interner.len(), ser.interner.len());
        let (ps, ss) = (par.symbols(), ser.symbols());
        for a in par.analyzed() {
            for s in &a.webview_sites {
                assert_eq!(ps.resolve(s.method), ss.resolve(s.method));
            }
        }
    }

    #[test]
    fn batch_sizes_do_not_change_results() {
        let catalog = SdkIndex::paper();
        let ins = inputs(&catalog, 2_000, 19, 0.15);
        let baseline = run_pipeline(
            &ins,
            &catalog,
            PipelineConfig {
                workers: 1,
                batch: 1,
                ..PipelineConfig::default()
            },
        );
        for batch in [1usize, 2, 5, 17, 1000] {
            let out = run_pipeline(
                &ins,
                &catalog,
                PipelineConfig {
                    workers: 4,
                    batch,
                    ..PipelineConfig::default()
                },
            );
            assert_eq!(out.stats.batch, batch);
            assert_eq!(out.results.len(), baseline.results.len());
            for (i, (a, b)) in out.results.iter().zip(&baseline.results).enumerate() {
                assert_eq!(a.is_ok(), b.is_ok(), "index {i} at batch {batch}");
            }
        }
    }

    #[test]
    fn broken_fraction_counted() {
        let catalog = SdkIndex::paper();
        let ins = inputs(&catalog, 2_000, 3, 0.25);
        let out = run_pipeline(&ins, &catalog, PipelineConfig::default());
        assert_eq!(out.results.len(), ins.len());
        assert!(out.broken_count() > 0);
        assert_eq!(out.analyzed_count() + out.broken_count(), ins.len());
    }

    #[test]
    fn empty_corpus_ok() {
        let catalog = SdkIndex::paper();
        let out = run_pipeline(&[], &catalog, PipelineConfig::default());
        assert_eq!(out.results.len(), 0);
        assert_eq!(out.broken_count(), 0);
        assert_eq!(out.stats.total, 0);
        assert_eq!(out.stats.apps_per_second(), 0.0);
        assert_eq!(out.stats.interner.global_symbols, 0);
    }

    #[test]
    fn interner_counters_populated() {
        let catalog = SdkIndex::paper();
        let ins = inputs(&catalog, 2_000, 23, 0.0);
        let out = run_pipeline(
            &ins,
            &catalog,
            PipelineConfig {
                workers: 4,
                ..PipelineConfig::default()
            },
        );
        let c = &out.stats.interner;
        assert!(c.global_symbols > 0);
        assert_eq!(c.global_symbols, out.interner.len());
        assert!(c.global_bytes > 0);
        // Workers re-discover shared strings, so local ≥ global.
        assert!(c.local_symbols >= c.global_symbols);
        assert!(c.local_bytes >= c.global_bytes);
        // Every unique local string misses exactly once; repeats (method
        // names, shared packages) land as hits.
        assert_eq!(c.local_misses, c.local_symbols as u64);
        assert!(c.local_hits > 0);
        // Package labels are memoized per worker, so repeats hit the cache.
        assert!(c.label_hits > 0);
        assert!(c.label_hit_rate() > 0.0);
        // The join pre-sizes the global table from the summed lexicons, so
        // the hit rate is global/local and can never exceed 1.
        assert_eq!(c.presized_symbols, c.local_symbols);
        assert!(c.presize_hit_rate() > 0.0 && c.presize_hit_rate() <= 1.0);
        // The serial tail was timed.
        assert!(out.stats.serial_tail_ns > 0);
        assert!(out.stats.serial_tail_ns <= out.stats.wall_ns);
        // Snapshot covers exactly the global table.
        assert_eq!(out.symbols().len(), c.global_symbols);
    }

    /// Keep deliberate test panics out of stderr while still letting any
    /// unexpected panic report normally. Process-global, so installed once.
    fn quiet_injected_panics() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.contains("injected"))
                    .or_else(|| {
                        info.payload()
                            .downcast_ref::<String>()
                            .map(|s| s.contains("injected"))
                    })
                    .unwrap_or(false);
                if !injected {
                    previous(info);
                }
            }));
        });
    }

    #[test]
    fn panicking_analysis_is_isolated() {
        quiet_injected_panics();
        let catalog = SdkIndex::paper();
        let ins = inputs(&catalog, 2_000, 7, 0.0);
        let trap = ins.len() / 2;
        let out = run_pipeline_with(
            &ins,
            &catalog,
            PipelineConfig {
                workers: 4,
                ..PipelineConfig::default()
            },
            |input, ctx| {
                if std::ptr::eq(input, &ins[trap]) {
                    panic!("injected analysis fault");
                }
                analyze_app_timed_with(input.meta.clone(), &input.bytes, ctx)
            },
        );
        assert_eq!(out.results.len(), ins.len());
        assert_eq!(out.stats.panicked, 1);
        match &out.results[trap] {
            Err(ApkError::AnalysisPanic { message }) => {
                assert!(message.contains("injected analysis fault"), "{message}");
            }
            other => panic!("expected AnalysisPanic, got {other:?}"),
        }
        assert_eq!(out.analyzed_count() + out.broken_count(), ins.len());
        assert_eq!(out.stats.failure_kinds.get("analysis-panic"), Some(&1));
    }

    #[test]
    fn stage_timings_can_be_disabled() {
        let catalog = SdkIndex::paper();
        let ins = inputs(&catalog, 3_000, 5, 0.0);
        let on = run_pipeline(&ins, &catalog, PipelineConfig::default());
        let off = run_pipeline(
            &ins,
            &catalog,
            PipelineConfig {
                stage_timings: false,
                ..PipelineConfig::default()
            },
        );
        assert!(on.stats.stage.total_ns() > 0);
        assert_eq!(off.stats.stage.total_ns(), 0);
        assert_eq!(on.analyzed_count(), off.analyzed_count());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn stats_counters_sum_to_result_counts(
            seed in 0u64..1_000,
            workers in 1usize..9,
            batch in 0usize..40,
            corrupt in prop_oneof![Just(0.0f64), Just(0.2f64)],
        ) {
            let catalog = SdkIndex::paper();
            let ins = inputs(&catalog, 4_000, seed, corrupt);
            let out = run_pipeline(
                &ins,
                &catalog,
                PipelineConfig {
                    workers,
                    batch,
                    ..PipelineConfig::default()
                },
            );
            let s = &out.stats;
            prop_assert_eq!(s.total, out.results.len());
            prop_assert_eq!(s.analyzed, out.analyzed_count());
            prop_assert_eq!(s.broken, out.broken_count());
            prop_assert_eq!(s.analyzed + s.broken, s.total);
            prop_assert_eq!(s.panicked, 0);
            prop_assert_eq!(
                s.failure_kinds.values().sum::<usize>(),
                s.broken
            );
            prop_assert_eq!(
                s.workers.iter().map(|w| w.apps).sum::<usize>(),
                s.total
            );
            prop_assert!(s.workers.len() <= workers);
            // Interner invariants: the local tables cover the global one.
            prop_assert!(s.interner.local_symbols >= s.interner.global_symbols);
            prop_assert_eq!(s.interner.global_symbols, out.interner.len());
            prop_assert_eq!(
                s.interner.local_misses,
                s.interner.local_symbols as u64
            );
            prop_assert_eq!(s.interner.presized_symbols, s.interner.local_symbols);
            prop_assert!(s.interner.presize_hit_rate() <= 1.0);
            prop_assert!(s.serial_tail_ns <= s.wall_ns);
            // Call-graph counters: one graph (and one traversal) per dex,
            // so graphs ≥ analyzed apps and every traversal either reused
            // or grew the worker's bitset.
            prop_assert!(s.callgraph.graphs >= s.analyzed as u64);
            prop_assert_eq!(
                s.callgraph.bitset_reuses + s.callgraph.bitset_grows,
                s.callgraph.graphs
            );
            // Default preset is All: every dex decode is a full decode,
            // every generator dex carries a stored lookup table, and no
            // lazy rebuild should ever fire.
            prop_assert_eq!(s.decode.checksum_only, 0);
            prop_assert_eq!(s.decode.trusted, 0);
            prop_assert!(s.decode.full >= s.analyzed as u64);
            prop_assert_eq!(s.decode.lut_present, s.decode.full);
            prop_assert_eq!(s.decode.lut_rebuilds, 0);
            prop_assert!(s.decode.trusted_rate() == 0.0);
            if s.analyzed > 0 {
                prop_assert!(s.callgraph.edges > 0);
                prop_assert!(s.callgraph.edges_traversed > 0);
                prop_assert!(s.callgraph.vtable_hit_rate() <= 1.0);
                // Constant propagation ran over every analyzed dex: every
                // method was classified, branchy ones built blocks, and
                // each block was visited at least once.
                prop_assert!(s.dataflow.methods > 0);
                prop_assert!(s.dataflow.linear_methods <= s.dataflow.methods);
                prop_assert!(s.dataflow.iterations >= s.dataflow.blocks);
                prop_assert!(s.dataflow.resolved_rate() <= 1.0);
            }
            if s.total > 0 {
                prop_assert!(s.wall_ns > 0);
                prop_assert!(s.apps_per_second() > 0.0);
            }
        }
    }
}
