//! Corpus-level aggregation: everything Tables 3/4/5/7 and Figures 3/4
//! report, computed from per-app analyses plus the SDK index.
//!
//! The hot loop runs entirely on the interned IR: methods are counted by
//! their record-time [`WEBVIEW_CONTENT_METHODS`] index, packages by their
//! record-time [`LabelId`], and SDKs by catalog index into flat arrays.
//! No symbol is resolved and no `String` is hashed anywhere in here —
//! the only strings the result owns are display names copied at the very
//! end (method names, SDK names).
//!
//! [`WEBVIEW_CONTENT_METHODS`]: wla_apk::names::WEBVIEW_CONTENT_METHODS

use crate::analyze::AppAnalysis;
use crate::pipeline::PipelineOutput;
use std::collections::{BTreeMap, HashSet};
use wla_callgraph::UrlOrigin;
use wla_corpus::playstore::PlayCategory;
use wla_corpus::METHODS;
use wla_intern::U32BuildHasher;
use wla_sdk_index::{LabelId, SdkCategory, SdkIndex};

/// Number of SDK categories (Table 3 rows).
const NCAT: usize = SdkCategory::ALL.len();

/// Per-SDK usage counts (Tables 4 and 5 rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdkUsageRow {
    /// SDK display name.
    pub name: String,
    /// SDK category.
    pub category: SdkCategory,
    /// Apps observed calling a WebView load method from this SDK's package.
    pub wv_apps: usize,
    /// Apps observed calling `launchUrl` from this SDK's package.
    pub ct_apps: usize,
}

/// Per-category SDK counts (Table 3 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdkTypeCount {
    /// SDK category.
    pub category: SdkCategory,
    /// SDKs observed using WebViews (≥ threshold apps).
    pub webview: usize,
    /// SDKs observed using CTs.
    pub custom_tabs: usize,
    /// SDKs observed using both.
    pub both: usize,
}

/// One Table 7 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodCensusRow {
    /// Method name.
    pub method: String,
    /// Apps with a reachable third-party call to this method.
    pub apps: usize,
    /// Of those, apps where the call comes from a labeled SDK package.
    pub apps_via_top_sdks: usize,
}

/// One Figure 4 heatmap row: P(method | app uses SDKs of this category).
#[derive(Debug, Clone, PartialEq)]
pub struct HeatmapRow {
    /// SDK category.
    pub category: SdkCategory,
    /// Apps using WebView SDKs of this category (denominator).
    pub apps: usize,
    /// Per-method fraction, aligned with [`METHODS`].
    pub method_fraction: [f64; 7],
}

/// One Figure 3 bar: apps per (Play category × SDK category).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoryBreakdown {
    /// Play category.
    pub play_category: PlayCategory,
    /// Total apps of this Play category using the mechanism via SDKs.
    pub total: usize,
    /// Apps per SDK category.
    pub by_sdk_category: Vec<(SdkCategory, usize)>,
}

/// §3.1.4 URL-origin census: of the third-party URL-bearing call sites
/// (WebView *load* methods and CT `launchUrl`), how many did constant
/// propagation resolve to a single URL constant, and how many apps are
/// fully accounted for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UrlOriginCensus {
    /// Sites whose URL argument resolved to one string constant.
    pub resolved_sites: usize,
    /// Sites whose URL argument never resolved to a constant.
    pub unknown_sites: usize,
    /// Sites where distinct constants merge on different paths.
    pub conflict_sites: usize,
    /// Apps with ≥ 1 URL-bearing site, all of them resolved.
    pub apps_fully_resolved: usize,
    /// Apps with ≥ 1 unresolved (unknown or conflicting) site.
    pub apps_with_unresolved: usize,
}

impl UrlOriginCensus {
    /// Fraction of URL-bearing sites resolved to a constant.
    pub fn resolved_rate(&self) -> f64 {
        let total = self.resolved_sites + self.unknown_sites + self.conflict_sites;
        if total == 0 {
            return 0.0;
        }
        self.resolved_sites as f64 / total as f64
    }
}

/// Everything the static study measures.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyResults {
    /// Apps whose containers decoded and analyzed.
    pub analyzed: usize,
    /// Broken containers.
    pub broken: usize,
    /// Apps using WebViews (third-party-capable sites only).
    pub webview_apps: usize,
    /// Apps using Custom Tabs.
    pub ct_apps: usize,
    /// Apps using both.
    pub both_apps: usize,
    /// WebView apps whose load methods are called from labeled SDKs.
    pub webview_apps_via_top_sdks: usize,
    /// CT apps whose `launchUrl` is called from labeled SDKs.
    pub ct_apps_via_top_sdks: usize,
    /// Apps using both, both via labeled SDKs.
    pub both_apps_via_top_sdks: usize,
    /// Table 7 per-method rows, in [`METHODS`] order.
    pub method_census: Vec<MethodCensusRow>,
    /// Per-SDK usage rows, sorted by total usage descending.
    pub sdk_usage: Vec<SdkUsageRow>,
    /// Table 3 rows (SDKs observed with ≥ `top_sdk_threshold` apps).
    pub sdk_type_counts: Vec<SdkTypeCount>,
    /// Figure 4 heatmap rows.
    pub heatmap: Vec<HeatmapRow>,
    /// Figure 3, WebView panel (top-10 Play categories).
    pub category_webview: Vec<CategoryBreakdown>,
    /// Figure 3, CT panel.
    pub category_ct: Vec<CategoryBreakdown>,
    /// Apps with load-method calls from obfuscated packages.
    pub obfuscated_caller_apps: usize,
    /// Apps with load-method calls from unlabeled packages.
    pub unlabeled_caller_apps: usize,
    /// Custom `extends WebView` classes found across the corpus.
    pub custom_webview_classes: usize,
    /// Unreachable WebView sites discarded by traversal (ablation metric).
    pub unreachable_sites_discarded: usize,
    /// Ablation: WebView-app count if deep-link (first-party) activities
    /// were *not* excluded — the §3.1.3 filter's effect.
    pub webview_apps_without_deeplink_exclusion: usize,
    /// Ablation: WebView-app count if unreachable (dead-code) sites were
    /// counted — what a whole-graph scan without entry-point traversal
    /// would report.
    pub webview_apps_without_reachability: usize,
    /// §3.1.4 resolved-vs-unknown URL-origin census over third-party
    /// URL-bearing sites.
    pub url_origin_census: UrlOriginCensus,
}

/// Aggregate pipeline output. `top_sdk_threshold` is the minimum number of
/// observed apps for an SDK to appear in the per-SDK usage rows. The
/// paper's >100-apps popularity criterion is already encoded in the
/// catalog (every entry is a package the paper found in >100 apps), so the
/// usual threshold is 1; rare SDKs simply may not be sampled at high scale
/// divisors — EXPERIMENTS.md quantifies this.
pub fn aggregate(
    output: &PipelineOutput,
    catalog: &SdkIndex,
    top_sdk_threshold: usize,
) -> StudyResults {
    let analyses: Vec<&AppAnalysis> = output.analyzed().collect();
    let n_sdks = catalog.sdks().len();

    // Per-SDK app counts, indexed by catalog position.
    let mut sdk_wv_apps: Vec<usize> = vec![0; n_sdks];
    let mut sdk_ct_apps: Vec<usize> = vec![0; n_sdks];

    let mut webview_apps = 0usize;
    let mut ct_apps = 0usize;
    let mut both_apps = 0usize;
    let mut wv_via = 0usize;
    let mut ct_via = 0usize;
    let mut both_via = 0usize;
    let mut obfuscated_caller_apps = 0usize;
    let mut unlabeled_caller_apps = 0usize;
    let mut custom_webview_classes = 0usize;
    let mut unreachable = 0usize;

    let mut method_apps = [0usize; 7];
    let mut method_via = [0usize; 7];

    // Figure 4 accumulators, indexed by `SdkCategory::table3_index`:
    // per SDK category, apps using it (wv) and per method, apps where
    // that category's SDK code calls the method.
    let mut cat_apps = [0usize; NCAT];
    let mut cat_method_apps = [[0usize; 7]; NCAT];

    // Figure 3 accumulators: Play category → per-SDK-category app counts.
    let mut play_wv: BTreeMap<PlayCategory, [usize; NCAT]> = BTreeMap::new();
    let mut play_ct: BTreeMap<PlayCategory, [usize; NCAT]> = BTreeMap::new();

    // Per-app scratch, reused across the corpus (cleared, not realloc'd).
    let mut app_wv_sdks: HashSet<u32, U32BuildHasher> = HashSet::default();
    let mut app_ct_sdks: HashSet<u32, U32BuildHasher> = HashSet::default();

    let mut wv_no_deeplink_excl = 0usize;
    let mut wv_no_reach = 0usize;
    let mut census = UrlOriginCensus::default();
    for a in &analyses {
        custom_webview_classes += a.custom_webview_classes.len();
        unreachable += a.unreachable_webview_sites;
        // Ablation counters: what naive pipelines would have reported.
        if !a.webview_sites.is_empty() {
            wv_no_deeplink_excl += 1;
        }
        if !a.webview_sites.is_empty() || a.unreachable_webview_sites > 0 {
            wv_no_reach += 1;
        }
        let uses_wv = a.uses_webview();
        let uses_ct = a.uses_custom_tabs();
        if uses_wv {
            webview_apps += 1;
        }
        if uses_ct {
            ct_apps += 1;
        }
        if uses_wv && uses_ct {
            both_apps += 1;
        }

        // Record-time labels: no trie walks, no package strings here.
        app_wv_sdks.clear();
        app_ct_sdks.clear();
        let mut app_obfuscated = false;
        let mut app_unlabeled = false;
        // Methods called, and methods called from any labeled SDK package.
        let mut methods = [false; 7];
        let mut methods_sdk = [false; 7];
        // Per SDK category, methods called from that category's packages.
        let mut methods_by_cat = [[false; 7]; NCAT];
        // URL-origin census over this app's URL-bearing sites.
        let mut app_url_sites = 0usize;
        let mut app_unresolved = 0usize;
        let mut tally_origin = |census: &mut UrlOriginCensus, origin: UrlOrigin| {
            app_url_sites += 1;
            match origin {
                UrlOrigin::Resolved => census.resolved_sites += 1,
                UrlOrigin::Unknown => {
                    census.unknown_sites += 1;
                    app_unresolved += 1;
                }
                UrlOrigin::Conflict => {
                    census.conflict_sites += 1;
                    app_unresolved += 1;
                }
            }
        };

        for site in a.third_party_webview() {
            let mi = site.method_idx as usize;
            methods[mi] = true;
            if site.is_load_method {
                tally_origin(&mut census, site.origin);
            }
            match site.label {
                LabelId::Sdk(idx) => {
                    methods_sdk[mi] = true;
                    let cat = catalog.sdks()[idx as usize].category;
                    methods_by_cat[cat.table3_index()][mi] = true;
                    if site.is_load_method {
                        app_wv_sdks.insert(idx);
                    }
                }
                LabelId::Obfuscated if site.is_load_method => app_obfuscated = true,
                LabelId::Unlabeled if site.is_load_method => app_unlabeled = true,
                _ => {}
            }
        }
        for site in a.third_party_ct() {
            if !site.is_launch {
                continue;
            }
            tally_origin(&mut census, site.origin);
            if let LabelId::Sdk(idx) = site.label {
                app_ct_sdks.insert(idx);
            }
        }
        if app_url_sites > 0 {
            if app_unresolved == 0 {
                census.apps_fully_resolved += 1;
            } else {
                census.apps_with_unresolved += 1;
            }
        }

        for (i, &m) in methods.iter().enumerate() {
            if m {
                method_apps[i] += 1;
            }
            if methods_sdk[i] {
                method_via[i] += 1;
            }
        }
        for &idx in &app_wv_sdks {
            sdk_wv_apps[idx as usize] += 1;
        }
        for &idx in &app_ct_sdks {
            sdk_ct_apps[idx as usize] += 1;
        }
        if app_obfuscated {
            obfuscated_caller_apps += 1;
        }
        if app_unlabeled {
            unlabeled_caller_apps += 1;
        }

        let wv_sdk = !app_wv_sdks.is_empty();
        let ct_sdk = !app_ct_sdks.is_empty();
        if uses_wv && wv_sdk {
            wv_via += 1;
        }
        if uses_ct && ct_sdk {
            ct_via += 1;
        }
        if uses_wv && uses_ct && wv_sdk && ct_sdk {
            both_via += 1;
        }

        // Figure 4: categories of this app's load-method SDK callers.
        let mut app_cats = [false; NCAT];
        for &idx in &app_wv_sdks {
            app_cats[catalog.sdks()[idx as usize].category.table3_index()] = true;
        }
        for (t3, &used) in app_cats.iter().enumerate() {
            if !used {
                continue;
            }
            cat_apps[t3] += 1;
            for (i, &hit) in methods_by_cat[t3].iter().enumerate() {
                if hit {
                    cat_method_apps[t3][i] += 1;
                }
            }
        }

        // Figure 3.
        if app_cats.iter().any(|&u| u) {
            let row = play_wv.entry(a.meta.category).or_insert([0; NCAT]);
            for (t3, &used) in app_cats.iter().enumerate() {
                if used {
                    row[t3] += 1;
                }
            }
        }
        let mut ct_cats = [false; NCAT];
        for &idx in &app_ct_sdks {
            ct_cats[catalog.sdks()[idx as usize].category.table3_index()] = true;
        }
        if ct_cats.iter().any(|&u| u) {
            let row = play_ct.entry(a.meta.category).or_insert([0; NCAT]);
            for (t3, &used) in ct_cats.iter().enumerate() {
                if used {
                    row[t3] += 1;
                }
            }
        }
    }

    // Per-SDK usage rows above the popularity threshold. Display names are
    // copied here, at the report boundary.
    let mut sdk_usage: Vec<SdkUsageRow> = catalog
        .sdks()
        .iter()
        .enumerate()
        .filter_map(|(i, sdk)| {
            let wv = sdk_wv_apps[i];
            let ct = sdk_ct_apps[i];
            if wv.max(ct) >= top_sdk_threshold.max(1) && !sdk.obfuscated {
                Some(SdkUsageRow {
                    name: sdk.name.clone(),
                    category: sdk.category,
                    wv_apps: wv,
                    ct_apps: ct,
                })
            } else {
                None
            }
        })
        .collect();
    sdk_usage.sort_by_key(|r| std::cmp::Reverse(r.wv_apps + r.ct_apps));

    // Table 3 counts.
    let sdk_type_counts = SdkCategory::ALL
        .iter()
        .map(|&category| {
            let of_cat: Vec<&SdkUsageRow> = sdk_usage
                .iter()
                .filter(|r| r.category == category)
                .collect();
            SdkTypeCount {
                category,
                webview: of_cat
                    .iter()
                    .filter(|r| r.wv_apps >= top_sdk_threshold)
                    .count(),
                custom_tabs: of_cat
                    .iter()
                    .filter(|r| r.ct_apps >= top_sdk_threshold)
                    .count(),
                both: of_cat
                    .iter()
                    .filter(|r| r.wv_apps >= top_sdk_threshold && r.ct_apps >= top_sdk_threshold)
                    .count(),
            }
        })
        .collect();

    // Figure 4 rows, in `SdkCategory` order (the order keyed maps used to
    // produce) — only categories with observed apps appear.
    let mut heatmap: Vec<HeatmapRow> = SdkCategory::ALL
        .iter()
        .filter(|c| cat_apps[c.table3_index()] > 0)
        .map(|&category| {
            let t3 = category.table3_index();
            let apps = cat_apps[t3];
            let mut frac = [0f64; 7];
            for i in 0..7 {
                frac[i] = cat_method_apps[t3][i] as f64 / apps as f64;
            }
            HeatmapRow {
                category,
                apps,
                method_fraction: frac,
            }
        })
        .collect();
    heatmap.sort_by_key(|r| r.category);

    // Figure 3 top-10 panels.
    let top10 = |map: BTreeMap<PlayCategory, [usize; NCAT]>| {
        let mut rows: Vec<CategoryBreakdown> = map
            .into_iter()
            .map(|(play_category, by)| {
                let mut by_sdk_category: Vec<(SdkCategory, usize)> = SdkCategory::ALL
                    .iter()
                    .filter_map(|&c| {
                        let count = by[c.table3_index()];
                        (count > 0).then_some((c, count))
                    })
                    .collect();
                by_sdk_category.sort_by_key(|&(c, _)| c);
                CategoryBreakdown {
                    play_category,
                    total: by_sdk_category.iter().map(|&(_, n)| n).sum(),
                    by_sdk_category,
                }
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.total));
        rows.truncate(10);
        rows
    };

    let method_census = METHODS
        .iter()
        .enumerate()
        .map(|(i, m)| MethodCensusRow {
            method: (*m).to_owned(),
            apps: method_apps[i],
            apps_via_top_sdks: method_via[i],
        })
        .collect();

    StudyResults {
        analyzed: analyses.len(),
        broken: output.broken_count(),
        webview_apps,
        ct_apps,
        both_apps,
        webview_apps_via_top_sdks: wv_via,
        ct_apps_via_top_sdks: ct_via,
        both_apps_via_top_sdks: both_via,
        method_census,
        sdk_usage,
        sdk_type_counts,
        heatmap,
        category_webview: top10(play_wv),
        category_ct: top10(play_ct),
        obfuscated_caller_apps,
        unlabeled_caller_apps,
        custom_webview_classes,
        unreachable_sites_discarded: unreachable,
        webview_apps_without_deeplink_exclusion: wv_no_deeplink_excl,
        webview_apps_without_reachability: wv_no_reach,
        url_origin_census: census,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_pipeline, CorpusInput, PipelineConfig};
    use wla_corpus::{CorpusConfig, Generator};

    fn study(scale: u32, seed: u64) -> (StudyResults, Vec<wla_corpus::GeneratedApp>) {
        let catalog = SdkIndex::paper();
        let cfg = CorpusConfig {
            scale,
            seed,
            ..CorpusConfig::default()
        };
        let apps = Generator::new(&catalog, cfg).generate();
        let inputs: Vec<CorpusInput> = apps
            .iter()
            .map(|g| CorpusInput {
                meta: g.spec.meta.clone(),
                bytes: g.bytes.clone(),
            })
            .collect();
        let out = run_pipeline(&inputs, &catalog, PipelineConfig::default());
        let threshold = (100 / scale as usize).max(1);
        (aggregate(&out, &catalog, threshold), apps)
    }

    #[test]
    fn recovered_totals_match_ground_truth_exactly() {
        let catalog = SdkIndex::paper();
        let (results, apps) = study(400, 21);
        let truth_wv = apps
            .iter()
            .filter(|g| !g.corrupted && g.spec.uses_webview(&catalog))
            .count();
        let truth_ct = apps
            .iter()
            .filter(|g| !g.corrupted && g.spec.uses_custom_tabs())
            .count();
        assert_eq!(results.webview_apps, truth_wv);
        assert_eq!(results.ct_apps, truth_ct);
        assert_eq!(results.analyzed + results.broken, apps.len());
    }

    #[test]
    fn shares_match_paper_shape_at_scale() {
        let (results, _) = study(100, 77);
        let n = results.analyzed as f64;
        let wv = results.webview_apps as f64 / n;
        let ct = results.ct_apps as f64 / n;
        let both = results.both_apps as f64 / n;
        assert!((wv - 0.557).abs() < 0.05, "wv {wv}");
        assert!((ct - 0.199).abs() < 0.05, "ct {ct}");
        assert!((both - 0.15).abs() < 0.05, "both {both}");
        // loadUrl dominates the method census (Table 7's ordering).
        let census = &results.method_census;
        assert_eq!(census[0].method, "loadUrl");
        assert!(census[0].apps > census[1].apps);
        // Advertising SDKs dominate WebView usage; social dominates CT.
        let ads = results
            .sdk_usage
            .iter()
            .filter(|r| r.category == SdkCategory::Advertising)
            .map(|r| r.wv_apps)
            .max()
            .unwrap_or(0);
        assert!(ads > 0);
        let fb = results
            .sdk_usage
            .iter()
            .find(|r| r.name == "Facebook")
            .map(|r| r.ct_apps)
            .unwrap_or(0);
        assert!(
            fb as f64 / results.ct_apps as f64 > 0.5,
            "facebook {fb} of {}",
            results.ct_apps
        );
    }

    #[test]
    fn heatmap_user_support_loads_local_data() {
        let (results, _) = study(200, 5);
        if let Some(row) = results
            .heatmap
            .iter()
            .find(|r| r.category == SdkCategory::UserSupport)
        {
            // Figure 4 / §4.1.5: all user-support apps call
            // loadDataWithBaseURL (index 2).
            assert!(row.method_fraction[2] > 0.99, "{:?}", row.method_fraction);
        }
    }

    #[test]
    fn figure3_panels_have_at_most_ten_rows() {
        let (results, _) = study(200, 6);
        assert!(results.category_webview.len() <= 10);
        assert!(results.category_ct.len() <= 10);
        assert!(!results.category_webview.is_empty());
    }

    #[test]
    fn url_census_fully_resolves_generated_corpus() {
        // The lowering register-shuffles every URL call, but the argument
        // register always carries exactly one constant on every path, so
        // the dataflow pass must resolve 100% of URL-bearing sites.
        let (results, _) = study(200, 13);
        let c = results.url_origin_census;
        assert!(c.resolved_sites > 0);
        assert_eq!(c.unknown_sites, 0);
        assert_eq!(c.conflict_sites, 0);
        assert!(c.apps_fully_resolved > 0);
        assert_eq!(c.apps_with_unresolved, 0);
        assert_eq!(c.resolved_rate(), 1.0);
    }

    #[test]
    fn dead_sites_are_counted_as_discarded() {
        let (results, apps) = study(400, 8);
        let truth: usize = apps
            .iter()
            .filter(|g| !g.corrupted && g.spec.dead_code_webview)
            .count();
        assert_eq!(results.unreachable_sites_discarded, truth);
    }
}
