//! String-path aggregation oracle.
//!
//! A faithful copy of the *pre-interning* aggregation: every site's method
//! is resolved to text and matched against [`METHODS`] by string compare,
//! every caller package is resolved and re-labeled through the catalog's
//! string trie per site (no memo), and per-SDK accounting goes through
//! keyed maps. It exists for two jobs:
//!
//! 1. the metamorphic suite proves `aggregate` (interned path) produces
//!    *identical* [`StudyResults`] on randomized corpora, and
//! 2. the `static_pipeline` bench measures the interned path's speedup
//!    against it (EXPERIMENTS.md ablation).
//!
//! Deliberately not optimized — its value is being the obviously-correct
//! old semantics, kept compiling against the interned data model.

use crate::aggregate::{
    CategoryBreakdown, HeatmapRow, MethodCensusRow, SdkTypeCount, SdkUsageRow, StudyResults,
    UrlOriginCensus,
};
use crate::analyze::AppAnalysis;
use crate::pipeline::PipelineOutput;
use std::collections::{BTreeMap, HashMap, HashSet};
use wla_callgraph::UrlOrigin;
use wla_corpus::playstore::PlayCategory;
use wla_corpus::METHODS;
use wla_sdk_index::{Label, SdkCategory, SdkIndex};

/// [`crate::aggregate::aggregate`] re-implemented over resolved strings.
pub fn aggregate_string_oracle(
    output: &PipelineOutput,
    catalog: &SdkIndex,
    top_sdk_threshold: usize,
) -> StudyResults {
    let symbols = output.symbols();
    let analyses: Vec<&AppAnalysis> = output.analyzed().collect();

    // Per-SDK app sets (by catalog index), via pointer-position projection.
    let mut sdk_wv_apps: HashMap<usize, usize> = HashMap::new();
    let mut sdk_ct_apps: HashMap<usize, usize> = HashMap::new();
    let sdk_position: HashMap<*const wla_sdk_index::Sdk, usize> = catalog
        .sdks()
        .iter()
        .enumerate()
        .map(|(i, s)| (s as *const _, i))
        .collect();

    let mut webview_apps = 0usize;
    let mut ct_apps = 0usize;
    let mut both_apps = 0usize;
    let mut wv_via = 0usize;
    let mut ct_via = 0usize;
    let mut both_via = 0usize;
    let mut obfuscated_caller_apps = 0usize;
    let mut unlabeled_caller_apps = 0usize;
    let mut custom_webview_classes = 0usize;
    let mut unreachable = 0usize;

    let mut method_apps = [0usize; 7];
    let mut method_via = [0usize; 7];

    let mut cat_apps: BTreeMap<SdkCategory, usize> = BTreeMap::new();
    let mut cat_method_apps: BTreeMap<SdkCategory, [usize; 7]> = BTreeMap::new();

    let mut play_wv: BTreeMap<PlayCategory, BTreeMap<SdkCategory, usize>> = BTreeMap::new();
    let mut play_ct: BTreeMap<PlayCategory, BTreeMap<SdkCategory, usize>> = BTreeMap::new();

    let mut wv_no_deeplink_excl = 0usize;
    let mut wv_no_reach = 0usize;
    // The old way: collect each app's URL-bearing origins into a Vec and
    // tally afterwards — no streaming counters.
    let mut census = UrlOriginCensus::default();
    for a in &analyses {
        custom_webview_classes += a.custom_webview_classes.len();
        unreachable += a.unreachable_webview_sites;
        if !a.webview_sites.is_empty() {
            wv_no_deeplink_excl += 1;
        }
        if !a.webview_sites.is_empty() || a.unreachable_webview_sites > 0 {
            wv_no_reach += 1;
        }
        let uses_wv = a.uses_webview();
        let uses_ct = a.uses_custom_tabs();
        if uses_wv {
            webview_apps += 1;
        }
        if uses_ct {
            ct_apps += 1;
        }
        if uses_wv && uses_ct {
            both_apps += 1;
        }

        // Label caller packages per site — the old, memo-less way.
        let mut app_wv_sdks: HashSet<usize> = HashSet::new();
        let mut app_ct_sdks: HashSet<usize> = HashSet::new();
        let mut app_obfuscated = false;
        let mut app_unlabeled = false;
        let mut methods = [false; 7];
        let mut methods_sdk = [false; 7];
        let mut methods_by_cat: HashMap<SdkCategory, [bool; 7]> = HashMap::new();

        for site in a.third_party_webview() {
            let method = symbols.resolve(site.method);
            let mi = METHODS
                .iter()
                .position(|m| *m == method)
                .expect("known method");
            methods[mi] = true;
            let label = site
                .caller_package
                .map(|p| catalog.label(symbols.resolve(p.symbol())))
                .unwrap_or(Label::Unlabeled);
            match label {
                Label::Sdk(sdk) => {
                    methods_sdk[mi] = true;
                    methods_by_cat.entry(sdk.category).or_default()[mi] = true;
                    if site.is_load_method {
                        let idx = sdk_position[&(sdk as *const _)];
                        app_wv_sdks.insert(idx);
                    }
                }
                Label::Obfuscated if site.is_load_method => app_obfuscated = true,
                Label::Unlabeled if site.is_load_method => app_unlabeled = true,
                _ => {}
            }
        }
        for site in a.third_party_ct() {
            if symbols.resolve(site.method) != wla_apk::names::CT_LAUNCH_METHOD {
                continue;
            }
            let label = site
                .caller_package
                .map(|p| catalog.label(symbols.resolve(p.symbol())))
                .unwrap_or(Label::Unlabeled);
            if let Label::Sdk(sdk) = label {
                let idx = sdk_position[&(sdk as *const _)];
                app_ct_sdks.insert(idx);
            }
        }

        // URL-origin census, the materialize-then-count way: gather this
        // app's URL-bearing origins (string-matching `launchUrl` like the
        // loop above) and tally them in separate passes.
        let origins: Vec<UrlOrigin> = a
            .third_party_webview()
            .filter(|s| s.is_load_method)
            .map(|s| s.origin)
            .chain(
                a.third_party_ct()
                    .filter(|s| symbols.resolve(s.method) == wla_apk::names::CT_LAUNCH_METHOD)
                    .map(|s| s.origin),
            )
            .collect();
        census.resolved_sites += origins
            .iter()
            .filter(|o| **o == UrlOrigin::Resolved)
            .count();
        census.unknown_sites += origins.iter().filter(|o| **o == UrlOrigin::Unknown).count();
        census.conflict_sites += origins
            .iter()
            .filter(|o| **o == UrlOrigin::Conflict)
            .count();
        if !origins.is_empty() {
            if origins.iter().all(|o| *o == UrlOrigin::Resolved) {
                census.apps_fully_resolved += 1;
            } else {
                census.apps_with_unresolved += 1;
            }
        }

        for (i, &m) in methods.iter().enumerate() {
            if m {
                method_apps[i] += 1;
            }
            if methods_sdk[i] {
                method_via[i] += 1;
            }
        }
        for idx in &app_wv_sdks {
            *sdk_wv_apps.entry(*idx).or_default() += 1;
        }
        for idx in &app_ct_sdks {
            *sdk_ct_apps.entry(*idx).or_default() += 1;
        }
        if app_obfuscated {
            obfuscated_caller_apps += 1;
        }
        if app_unlabeled {
            unlabeled_caller_apps += 1;
        }

        let wv_sdk = !app_wv_sdks.is_empty();
        let ct_sdk = !app_ct_sdks.is_empty();
        if uses_wv && wv_sdk {
            wv_via += 1;
        }
        if uses_ct && ct_sdk {
            ct_via += 1;
        }
        if uses_wv && uses_ct && wv_sdk && ct_sdk {
            both_via += 1;
        }

        let app_cats: HashSet<SdkCategory> = app_wv_sdks
            .iter()
            .map(|&i| catalog.sdks()[i].category)
            .collect();
        for cat in &app_cats {
            *cat_apps.entry(*cat).or_default() += 1;
            let row = cat_method_apps.entry(*cat).or_default();
            if let Some(ms) = methods_by_cat.get(cat) {
                for (i, &hit) in ms.iter().enumerate() {
                    if hit {
                        row[i] += 1;
                    }
                }
            }
        }

        for cat in &app_cats {
            *play_wv
                .entry(a.meta.category)
                .or_default()
                .entry(*cat)
                .or_default() += 1;
        }
        let ct_cats: HashSet<SdkCategory> = app_ct_sdks
            .iter()
            .map(|&i| catalog.sdks()[i].category)
            .collect();
        for cat in &ct_cats {
            *play_ct
                .entry(a.meta.category)
                .or_default()
                .entry(*cat)
                .or_default() += 1;
        }
    }

    let mut sdk_usage: Vec<SdkUsageRow> = catalog
        .sdks()
        .iter()
        .enumerate()
        .filter_map(|(i, sdk)| {
            let wv = sdk_wv_apps.get(&i).copied().unwrap_or(0);
            let ct = sdk_ct_apps.get(&i).copied().unwrap_or(0);
            if wv.max(ct) >= top_sdk_threshold.max(1) && !sdk.obfuscated {
                Some(SdkUsageRow {
                    name: sdk.name.clone(),
                    category: sdk.category,
                    wv_apps: wv,
                    ct_apps: ct,
                })
            } else {
                None
            }
        })
        .collect();
    sdk_usage.sort_by_key(|r| std::cmp::Reverse(r.wv_apps + r.ct_apps));

    let sdk_type_counts = SdkCategory::ALL
        .iter()
        .map(|&category| {
            let of_cat: Vec<&SdkUsageRow> = sdk_usage
                .iter()
                .filter(|r| r.category == category)
                .collect();
            SdkTypeCount {
                category,
                webview: of_cat
                    .iter()
                    .filter(|r| r.wv_apps >= top_sdk_threshold)
                    .count(),
                custom_tabs: of_cat
                    .iter()
                    .filter(|r| r.ct_apps >= top_sdk_threshold)
                    .count(),
                both: of_cat
                    .iter()
                    .filter(|r| r.wv_apps >= top_sdk_threshold && r.ct_apps >= top_sdk_threshold)
                    .count(),
            }
        })
        .collect();

    let heatmap = cat_apps
        .iter()
        .map(|(&category, &apps)| {
            let hits = cat_method_apps.get(&category).copied().unwrap_or_default();
            let mut frac = [0f64; 7];
            for i in 0..7 {
                frac[i] = if apps > 0 {
                    hits[i] as f64 / apps as f64
                } else {
                    0.0
                };
            }
            HeatmapRow {
                category,
                apps,
                method_fraction: frac,
            }
        })
        .collect();

    let top10 = |map: BTreeMap<PlayCategory, BTreeMap<SdkCategory, usize>>| {
        let mut rows: Vec<CategoryBreakdown> = map
            .into_iter()
            .map(|(play_category, by)| {
                let total = by.values().sum();
                CategoryBreakdown {
                    play_category,
                    total,
                    by_sdk_category: by.into_iter().collect(),
                }
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.total));
        rows.truncate(10);
        rows
    };

    let method_census = METHODS
        .iter()
        .enumerate()
        .map(|(i, m)| MethodCensusRow {
            method: (*m).to_owned(),
            apps: method_apps[i],
            apps_via_top_sdks: method_via[i],
        })
        .collect();

    StudyResults {
        analyzed: analyses.len(),
        broken: output.broken_count(),
        webview_apps,
        ct_apps,
        both_apps,
        webview_apps_via_top_sdks: wv_via,
        ct_apps_via_top_sdks: ct_via,
        both_apps_via_top_sdks: both_via,
        method_census,
        sdk_usage,
        sdk_type_counts,
        heatmap,
        category_webview: top10(play_wv),
        category_ct: top10(play_ct),
        obfuscated_caller_apps,
        unlabeled_caller_apps,
        custom_webview_classes,
        unreachable_sites_discarded: unreachable,
        webview_apps_without_deeplink_exclusion: wv_no_deeplink_excl,
        webview_apps_without_reachability: wv_no_reach,
        url_origin_census: census,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::aggregate;
    use crate::pipeline::{run_pipeline, CorpusInput, PipelineConfig};
    use wla_corpus::{CorpusConfig, Generator};

    #[test]
    fn oracle_agrees_with_interned_aggregate_on_a_fixed_corpus() {
        let catalog = SdkIndex::paper();
        let cfg = CorpusConfig {
            scale: 400,
            seed: 33,
            corrupt_fraction: 0.1,
            ..CorpusConfig::default()
        };
        let inputs: Vec<CorpusInput> = Generator::new(&catalog, cfg)
            .generate()
            .into_iter()
            .map(|g| CorpusInput {
                meta: g.spec.meta.clone(),
                bytes: g.bytes,
            })
            .collect();
        let out = run_pipeline(&inputs, &catalog, PipelineConfig::default());
        assert_eq!(
            aggregate(&out, &catalog, 1),
            aggregate_string_oracle(&out, &catalog, 1)
        );
    }
}
