//! Privacy nutrition labels from static analysis — §5's proposal made
//! executable: "Future research could consider including WebView usage for
//! third-party content as a metric in the 'privacy nutrition labels' as
//! displayed on the app store."
//!
//! [`privacy_label`] derives a per-app label from an [`AppAnalysis`]:
//! which mechanisms the app uses, which third-party SDK categories drive
//! its web content, whether a JS bridge is exposed to web content, and an
//! overall exposure grade.

use crate::analyze::AppAnalysis;
use std::collections::BTreeSet;
use wla_sdk_index::{LabelId, SdkCategory, SdkIndex};

/// Bit of `addJavascriptInterface` in [`AppAnalysis::method_mask`]
/// (position in `WEBVIEW_CONTENT_METHODS`).
const M_ADD_JS_IFACE: u8 = 1 << 1;
/// Bit of `evaluateJavascript`.
const M_EVAL_JS: u8 = 1 << 3;

/// Overall third-party web-content exposure grade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ExposureGrade {
    /// No third-party web content at all.
    None,
    /// Web content only via Custom Tabs (browser-isolated).
    Isolated,
    /// WebView usage without a JS bridge.
    Elevated,
    /// WebView usage with `addJavascriptInterface` exposed — the full
    /// bidirectional attack surface of Table 1.
    High,
}

impl ExposureGrade {
    /// Store-facing wording.
    pub fn label(self) -> &'static str {
        match self {
            ExposureGrade::None => "No third-party web content",
            ExposureGrade::Isolated => "Web content isolated in your browser",
            ExposureGrade::Elevated => "Displays web content inside the app",
            ExposureGrade::High => "Web content can exchange data with the app",
        }
    }
}

/// One app's privacy nutrition label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrivacyLabel {
    /// Package name.
    pub package: String,
    /// Uses WebViews for (potentially) third-party content.
    pub uses_webview: bool,
    /// Uses Custom Tabs.
    pub uses_custom_tabs: bool,
    /// Exposes a JS bridge to web content.
    pub js_bridge_exposed: bool,
    /// Can execute injected JavaScript in pages (`evaluateJavascript` /
    /// `javascript:` loads).
    pub can_inject_js: bool,
    /// Third-party SDK categories driving the app's web content.
    pub sdk_categories: Vec<SdkCategory>,
    /// Overall grade.
    pub grade: ExposureGrade,
}

impl PrivacyLabel {
    /// Render the label as store-listing lines.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n  {}\n", self.package, self.grade.label());
        if self.uses_webview {
            out.push_str("  • Shows web content in an embedded WebView\n");
        }
        if self.js_bridge_exposed {
            out.push_str("  • Web pages can call into the app (JavaScript bridge)\n");
        }
        if self.can_inject_js {
            out.push_str("  • The app can run scripts inside web pages you visit\n");
        }
        if self.uses_custom_tabs {
            out.push_str("  • Opens some web content in your browser (Custom Tabs)\n");
        }
        for cat in &self.sdk_categories {
            out.push_str(&format!("  • Web content driven by {} SDKs\n", cat.label()));
        }
        out
    }
}

/// Derive the label for one analyzed app. Pure interned-IR consumer: the
/// method mask and record-time [`LabelId`]s carry everything it needs, so
/// no symbol is ever resolved here.
pub fn privacy_label(analysis: &AppAnalysis, catalog: &SdkIndex) -> PrivacyLabel {
    let uses_webview = analysis.uses_webview();
    let uses_custom_tabs = analysis.uses_custom_tabs();
    let mask = analysis.method_mask();
    let js_bridge_exposed = mask & M_ADD_JS_IFACE != 0;
    let can_inject_js = mask & M_EVAL_JS != 0;

    let mut sdk_categories: BTreeSet<SdkCategory> = BTreeSet::new();
    for site in analysis.third_party_webview() {
        if let LabelId::Sdk(idx) = site.label {
            sdk_categories.insert(catalog.sdks()[idx as usize].category);
        }
    }
    for site in analysis.third_party_ct() {
        if let LabelId::Sdk(idx) = site.label {
            sdk_categories.insert(catalog.sdks()[idx as usize].category);
        }
    }

    let grade = match (uses_webview, uses_custom_tabs, js_bridge_exposed) {
        (false, false, _) => ExposureGrade::None,
        (false, true, _) => ExposureGrade::Isolated,
        (true, _, false) => ExposureGrade::Elevated,
        (true, _, true) => ExposureGrade::High,
    };

    PrivacyLabel {
        package: analysis.package.clone(),
        uses_webview,
        uses_custom_tabs,
        js_bridge_exposed,
        can_inject_js,
        sdk_categories: sdk_categories.into_iter().collect(),
        grade,
    }
}

/// Corpus-level label statistics (how many apps per grade).
pub fn grade_distribution(labels: &[PrivacyLabel]) -> Vec<(ExposureGrade, usize)> {
    let grades = [
        ExposureGrade::None,
        ExposureGrade::Isolated,
        ExposureGrade::Elevated,
        ExposureGrade::High,
    ];
    grades
        .iter()
        .map(|&g| (g, labels.iter().filter(|l| l.grade == g).count()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_pipeline, CorpusInput, PipelineConfig};
    use wla_corpus::{CorpusConfig, Generator};

    fn labels(scale: u32, seed: u64) -> Vec<PrivacyLabel> {
        let catalog = SdkIndex::paper();
        let cfg = CorpusConfig {
            scale,
            seed,
            corrupt_fraction: 0.0,
            ..CorpusConfig::default()
        };
        let inputs: Vec<CorpusInput> = Generator::new(&catalog, cfg)
            .generate()
            .into_iter()
            .map(|g| CorpusInput {
                meta: g.spec.meta.clone(),
                bytes: g.bytes,
            })
            .collect();
        let out = run_pipeline(&inputs, &catalog, PipelineConfig::default());
        out.analyzed().map(|a| privacy_label(a, &catalog)).collect()
    }

    #[test]
    fn grades_partition_the_corpus() {
        let labels = labels(500, 3);
        let dist = grade_distribution(&labels);
        let total: usize = dist.iter().map(|(_, n)| n).sum();
        assert_eq!(total, labels.len());
        // The paper's world: most apps have *some* exposure; a meaningful
        // share is High (bridges are common — Table 7's 36.9K apps).
        let high = dist
            .iter()
            .find(|(g, _)| *g == ExposureGrade::High)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        assert!(high > 0);
        let none = dist
            .iter()
            .find(|(g, _)| *g == ExposureGrade::None)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        assert!(none > 0);
    }

    #[test]
    fn grade_logic() {
        let labels = labels(500, 9);
        for l in &labels {
            match l.grade {
                ExposureGrade::None => {
                    assert!(!l.uses_webview && !l.uses_custom_tabs);
                }
                ExposureGrade::Isolated => {
                    assert!(!l.uses_webview && l.uses_custom_tabs);
                }
                ExposureGrade::Elevated => {
                    assert!(l.uses_webview && !l.js_bridge_exposed);
                }
                ExposureGrade::High => {
                    assert!(l.uses_webview && l.js_bridge_exposed);
                }
            }
        }
    }

    #[test]
    fn render_mentions_the_bridge() {
        let labels = labels(500, 5);
        let high = labels
            .iter()
            .find(|l| l.grade == ExposureGrade::High)
            .expect("some high-exposure app");
        let text = high.render();
        assert!(text.contains("JavaScript bridge"), "{text}");
    }
}
