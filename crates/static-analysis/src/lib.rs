//! # wla-static — the paper's §3.1 static analysis pipeline
//!
//! Implements Figure 1 end-to-end over SAPK containers:
//!
//! 1. metadata filter (done upstream by `wla-corpus`'s [`FilterSpec`]) —
//!    `(2)` download the most recent APK;
//! 2. `(3)` decompile and extract `extends WebView` classes
//!    ([`wla_decompile`]);
//! 3. `(4)` generate the whole-app call graph ([`wla_callgraph`]);
//! 4. `(5)` traverse from every component entry point and record each
//!    WebView content-method call and Custom-Tabs interaction, excluding
//!    deep-link (first-party) activities;
//! 5. §3.1.4 — extract the Java package at `loadUrl` / `loadData` /
//!    `loadDataWithBaseURL` / `launchUrl` call sites and label it against
//!    the SDK index; resolve each site's URL argument register to a
//!    constant (or not) by intra-procedural constant propagation
//!    ([`dataflow`]);
//! 6. aggregate into the paper's tables and figures, including the
//!    resolved-vs-unknown URL-origin census.
//!
//! [`FilterSpec`]: wla_corpus::FilterSpec

pub mod aggregate;
pub mod analyze;
mod cache;
pub mod dataflow;
pub mod oracle;
pub mod pipeline;
pub mod privacy;
pub mod stream;

pub use aggregate::{
    aggregate, CategoryBreakdown, HeatmapRow, MethodCensusRow, SdkTypeCount, SdkUsageRow,
    StudyResults, UrlOriginCensus,
};
pub use analyze::{
    analyze_app, analyze_app_bytes_timed_with, analyze_app_timed, analyze_app_timed_with,
    AnalysisCtx, AppAnalysis, CtSiteSummary, DecodeCounters, StageTimings, WebViewSiteSummary,
};
pub use dataflow::{method_provenance, DataflowCounters};
pub use oracle::aggregate_string_oracle;
pub use pipeline::{
    run_pipeline, run_pipeline_with, CorpusInput, InternerCounters, PipelineConfig, PipelineOutput,
    PipelineStats, WorkerStats,
};
pub use privacy::{grade_distribution, privacy_label, ExposureGrade, PrivacyLabel};
pub use stream::{run_pipeline_streamed, StreamConfig, StreamCounters, MANIFEST_SUBDIR};
