//! Per-shard resume cache: serialized analysis results keyed to a shard's
//! identity, so a rerun over a partially-analyzed corpus skips the shards
//! it already finished.
//!
//! A cache file (`manifest/<shard stem>.done`) stores the shard's
//! [`ShardStamp`] (header checksum + file length) followed by every
//! per-entry `Result<AppAnalysis, ApkError>` with **symbols resolved to
//! strings** against the writing worker's lexicon. Loading re-interns the
//! strings into the loading worker's lexicon; because the pipeline's
//! join-time symbol remap assigns global ids purely by first-occurrence
//! input order of the *strings*, a resumed run produces bit-identical
//! results to a fresh one.
//!
//! The loader is strictly best-effort: a missing file, stale stamp, bad
//! checksum, unknown version, or any parse failure is a cache miss
//! (`None`) — the shard is simply re-analyzed. Nothing here can corrupt a
//! run, only fail to accelerate it.

use crate::analyze::{AppAnalysis, CtSiteSummary, WebViewSiteSummary};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::Mutex;
use wla_apk::wire::{adler32, get_string, get_uvarint, put_string, put_uvarint};
use wla_apk::ApkError;
use wla_callgraph::UrlOrigin;
use wla_corpus::corpus_io::write_atomic;
use wla_corpus::playstore::{AppMeta, PlayCategory};
use wla_corpus::shard::ShardStamp;
use wla_intern::{LocalInterner, PkgId, Symbol};
use wla_sdk_index::LabelId;

/// Leading magic bytes of a result-cache file.
const CACHE_MAGIC: [u8; 4] = *b"WRES";
/// Current cache format version.
const CACHE_VERSION: u16 = 1;
/// magic + version + stamp (checksum u32 + file_len u64) + body checksum.
const CACHE_PREFIX: usize = 4 + 2 + 4 + 8 + 4;

/// Re-own a string as `&'static str` through a process-global dedup table.
///
/// `ApkError` carries several `&'static str` fields (truncation contexts,
/// section names); reloading them from a cache file needs *some* static
/// string. The table leaks each distinct string once — bounded in
/// practice by the finite set of literals the parsers embed.
fn leak_static(s: &str) -> &'static str {
    static TABLE: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut table = TABLE.lock().unwrap();
    if let Some(&existing) = table.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    table.insert(leaked);
    leaked
}

fn put_opt_symbol(buf: &mut Vec<u8>, sym: Option<Symbol>, lex: &LocalInterner) {
    match sym {
        None => buf.push(0),
        Some(s) => {
            buf.push(1);
            put_string(buf, lex.resolve(s));
        }
    }
}

fn put_label(buf: &mut Vec<u8>, label: LabelId) {
    match label {
        LabelId::CoreAndroid => buf.push(0),
        LabelId::Obfuscated => buf.push(1),
        LabelId::Unlabeled => buf.push(2),
        LabelId::Sdk(i) => {
            buf.push(3);
            put_uvarint(buf, u64::from(i));
        }
    }
}

fn put_meta(buf: &mut Vec<u8>, meta: &AppMeta) {
    put_string(buf, &meta.package);
    buf.push(meta.on_play_store as u8);
    put_uvarint(buf, meta.downloads);
    put_string(buf, meta.category.label());
    put_uvarint(buf, u64::from(meta.last_update_day));
}

fn put_error(buf: &mut Vec<u8>, e: &ApkError) {
    match e {
        ApkError::BadMagic { expected, found } => {
            buf.push(0);
            put_string(buf, expected);
            buf.extend_from_slice(found);
        }
        ApkError::UnsupportedVersion(v) => {
            buf.push(1);
            put_uvarint(buf, u64::from(*v));
        }
        ApkError::Truncated { context } => {
            buf.push(2);
            put_string(buf, context);
        }
        ApkError::ChecksumMismatch { stored, computed } => {
            buf.push(3);
            put_uvarint(buf, u64::from(*stored));
            put_uvarint(buf, u64::from(*computed));
        }
        ApkError::IndexOutOfRange { table, index, len } => {
            buf.push(4);
            put_string(buf, table);
            put_uvarint(buf, u64::from(*index));
            put_uvarint(buf, u64::from(*len));
        }
        ApkError::BadVarint => buf.push(5),
        ApkError::BadUtf8 => buf.push(6),
        ApkError::BadOpcode(op) => {
            buf.push(7);
            buf.push(*op);
        }
        ApkError::BadSectionTag(t) => {
            buf.push(8);
            buf.push(*t);
        }
        ApkError::SectionOutOfBounds { offset, len, total } => {
            buf.push(9);
            put_uvarint(buf, u64::from(*offset));
            put_uvarint(buf, u64::from(*len));
            put_uvarint(buf, u64::from(*total));
        }
        ApkError::SpanOverflow { offset, len } => {
            buf.push(10);
            put_uvarint(buf, *offset);
            put_uvarint(buf, *len);
        }
        ApkError::MissingSection(name) => {
            buf.push(11);
            put_string(buf, name);
        }
        ApkError::Invalid(what) => {
            buf.push(12);
            put_string(buf, what);
        }
        ApkError::AnalysisPanic { message } => {
            buf.push(13);
            put_string(buf, message);
        }
    }
}

fn put_analysis(buf: &mut Vec<u8>, a: &AppAnalysis, lex: &LocalInterner) {
    put_meta(buf, &a.meta);
    put_string(buf, &a.package);
    put_uvarint(buf, a.webview_sites.len() as u64);
    for s in &a.webview_sites {
        put_string(buf, lex.resolve(s.method));
        buf.push(s.method_idx);
        put_string(buf, lex.resolve(s.caller_class));
        put_opt_symbol(buf, s.caller_package.map(|p| p.symbol()), lex);
        put_label(buf, s.label);
        buf.push(s.in_deep_link_activity as u8);
        buf.push(s.is_load_method as u8);
        put_opt_symbol(buf, s.argument, lex);
        buf.push(s.origin as u8);
    }
    put_uvarint(buf, a.ct_sites.len() as u64);
    for s in &a.ct_sites {
        put_string(buf, lex.resolve(s.method));
        buf.push(s.is_launch as u8);
        put_string(buf, lex.resolve(s.caller_class));
        put_opt_symbol(buf, s.caller_package.map(|p| p.symbol()), lex);
        put_label(buf, s.label);
        buf.push(s.in_deep_link_activity as u8);
        put_opt_symbol(buf, s.argument, lex);
        buf.push(s.origin as u8);
    }
    put_uvarint(buf, a.custom_webview_classes.len() as u64);
    for c in &a.custom_webview_classes {
        put_string(buf, lex.resolve(*c));
    }
    put_uvarint(buf, a.unreachable_webview_sites as u64);
}

/// Serialize `results` (one shard's worth, in entry order) to `path`,
/// atomically, keyed to `stamp`. Symbols resolve against `lex`.
pub(crate) fn write_result_cache(
    path: &Path,
    stamp: ShardStamp,
    results: &[&Result<AppAnalysis, ApkError>],
    lex: &LocalInterner,
) -> io::Result<()> {
    let mut file = Vec::new();
    file.extend_from_slice(&CACHE_MAGIC);
    file.extend_from_slice(&CACHE_VERSION.to_le_bytes());
    file.extend_from_slice(&stamp.checksum.to_le_bytes());
    file.extend_from_slice(&stamp.file_len.to_le_bytes());
    file.extend_from_slice(&[0u8; 4]); // body checksum, patched below
    put_uvarint(&mut file, results.len() as u64);
    for result in results {
        match result {
            Ok(a) => {
                file.push(0);
                put_analysis(&mut file, a, lex);
            }
            Err(e) => {
                file.push(1);
                put_error(&mut file, e);
            }
        }
    }
    let checksum = adler32(&file[CACHE_PREFIX..]);
    file[CACHE_PREFIX - 4..CACHE_PREFIX].copy_from_slice(&checksum.to_le_bytes());
    write_atomic(path, &file)
}

fn get_u8(cur: &mut &[u8]) -> Result<u8, ApkError> {
    let (&first, rest) = cur.split_first().ok_or(ApkError::Truncated {
        context: "cache byte",
    })?;
    *cur = rest;
    Ok(first)
}

fn get_bool(cur: &mut &[u8]) -> Result<bool, ApkError> {
    match get_u8(cur)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(ApkError::Invalid("cache bool out of range")),
    }
}

fn get_opt_symbol(cur: &mut &[u8], lex: &mut LocalInterner) -> Result<Option<Symbol>, ApkError> {
    if get_bool(cur)? {
        Ok(Some(lex.intern(&get_string(cur)?)))
    } else {
        Ok(None)
    }
}

fn get_label(cur: &mut &[u8]) -> Result<LabelId, ApkError> {
    Ok(match get_u8(cur)? {
        0 => LabelId::CoreAndroid,
        1 => LabelId::Obfuscated,
        2 => LabelId::Unlabeled,
        3 => {
            let i = u32::try_from(get_uvarint(cur)?)
                .map_err(|_| ApkError::Invalid("cache sdk index"))?;
            LabelId::Sdk(i)
        }
        _ => return Err(ApkError::Invalid("cache label tag")),
    })
}

fn get_origin(cur: &mut &[u8]) -> Result<UrlOrigin, ApkError> {
    Ok(match get_u8(cur)? {
        0 => UrlOrigin::Resolved,
        1 => UrlOrigin::Unknown,
        2 => UrlOrigin::Conflict,
        _ => return Err(ApkError::Invalid("cache origin tag")),
    })
}

fn get_meta(cur: &mut &[u8]) -> Result<AppMeta, ApkError> {
    let package = get_string(cur)?;
    let on_play_store = get_bool(cur)?;
    let downloads = get_uvarint(cur)?;
    let category = PlayCategory::from_label(&get_string(cur)?)
        .ok_or(ApkError::Invalid("cache category label"))?;
    let last_update_day =
        u32::try_from(get_uvarint(cur)?).map_err(|_| ApkError::Invalid("cache update day"))?;
    Ok(AppMeta {
        package,
        on_play_store,
        downloads,
        category,
        last_update_day,
    })
}

fn get_error(cur: &mut &[u8]) -> Result<ApkError, ApkError> {
    Ok(match get_u8(cur)? {
        0 => {
            let expected = leak_static(&get_string(cur)?);
            let mut found = [0u8; 4];
            for b in &mut found {
                *b = get_u8(cur)?;
            }
            ApkError::BadMagic { expected, found }
        }
        1 => ApkError::UnsupportedVersion(
            u16::try_from(get_uvarint(cur)?).map_err(|_| ApkError::Invalid("cache version"))?,
        ),
        2 => ApkError::Truncated {
            context: leak_static(&get_string(cur)?),
        },
        3 => ApkError::ChecksumMismatch {
            stored: u32::try_from(get_uvarint(cur)?)
                .map_err(|_| ApkError::Invalid("cache checksum"))?,
            computed: u32::try_from(get_uvarint(cur)?)
                .map_err(|_| ApkError::Invalid("cache checksum"))?,
        },
        4 => ApkError::IndexOutOfRange {
            table: leak_static(&get_string(cur)?),
            index: u32::try_from(get_uvarint(cur)?)
                .map_err(|_| ApkError::Invalid("cache index"))?,
            len: u32::try_from(get_uvarint(cur)?).map_err(|_| ApkError::Invalid("cache index"))?,
        },
        5 => ApkError::BadVarint,
        6 => ApkError::BadUtf8,
        7 => ApkError::BadOpcode(get_u8(cur)?),
        8 => ApkError::BadSectionTag(get_u8(cur)?),
        9 => ApkError::SectionOutOfBounds {
            offset: u32::try_from(get_uvarint(cur)?)
                .map_err(|_| ApkError::Invalid("cache bounds"))?,
            len: u32::try_from(get_uvarint(cur)?).map_err(|_| ApkError::Invalid("cache bounds"))?,
            total: u32::try_from(get_uvarint(cur)?)
                .map_err(|_| ApkError::Invalid("cache bounds"))?,
        },
        10 => ApkError::SpanOverflow {
            offset: get_uvarint(cur)?,
            len: get_uvarint(cur)?,
        },
        11 => ApkError::MissingSection(leak_static(&get_string(cur)?)),
        12 => ApkError::Invalid(leak_static(&get_string(cur)?)),
        13 => ApkError::AnalysisPanic {
            message: get_string(cur)?,
        },
        _ => return Err(ApkError::Invalid("cache error tag")),
    })
}

fn get_analysis(cur: &mut &[u8], lex: &mut LocalInterner) -> Result<AppAnalysis, ApkError> {
    let meta = get_meta(cur)?;
    let package = get_string(cur)?;
    let n_wv = get_uvarint(cur)? as usize;
    if n_wv > cur.len() {
        return Err(ApkError::Invalid("cache site count"));
    }
    let mut webview_sites = Vec::with_capacity(n_wv);
    for _ in 0..n_wv {
        let method = lex.intern(&get_string(cur)?);
        let method_idx = get_u8(cur)?;
        let caller_class = lex.intern(&get_string(cur)?);
        let caller_package = get_opt_symbol(cur, lex)?.map(PkgId);
        let label = get_label(cur)?;
        let in_deep_link_activity = get_bool(cur)?;
        let is_load_method = get_bool(cur)?;
        let argument = get_opt_symbol(cur, lex)?;
        let origin = get_origin(cur)?;
        webview_sites.push(WebViewSiteSummary {
            method,
            method_idx,
            caller_class,
            caller_package,
            label,
            in_deep_link_activity,
            is_load_method,
            argument,
            origin,
        });
    }
    let n_ct = get_uvarint(cur)? as usize;
    if n_ct > cur.len() {
        return Err(ApkError::Invalid("cache site count"));
    }
    let mut ct_sites = Vec::with_capacity(n_ct);
    for _ in 0..n_ct {
        let method = lex.intern(&get_string(cur)?);
        let is_launch = get_bool(cur)?;
        let caller_class = lex.intern(&get_string(cur)?);
        let caller_package = get_opt_symbol(cur, lex)?.map(PkgId);
        let label = get_label(cur)?;
        let in_deep_link_activity = get_bool(cur)?;
        let argument = get_opt_symbol(cur, lex)?;
        let origin = get_origin(cur)?;
        ct_sites.push(CtSiteSummary {
            method,
            is_launch,
            caller_class,
            caller_package,
            label,
            in_deep_link_activity,
            argument,
            origin,
        });
    }
    let n_classes = get_uvarint(cur)? as usize;
    if n_classes > cur.len() {
        return Err(ApkError::Invalid("cache class count"));
    }
    let mut custom_webview_classes = Vec::with_capacity(n_classes);
    for _ in 0..n_classes {
        custom_webview_classes.push(lex.intern(&get_string(cur)?));
    }
    let unreachable_webview_sites = get_uvarint(cur)? as usize;
    Ok(AppAnalysis {
        meta,
        package,
        webview_sites,
        ct_sites,
        custom_webview_classes,
        unreachable_webview_sites,
    })
}

fn parse_body(
    mut cur: &[u8],
    lex: &mut LocalInterner,
) -> Result<Vec<Result<AppAnalysis, ApkError>>, ApkError> {
    let n = get_uvarint(&mut cur)? as usize;
    if n > cur.len() {
        return Err(ApkError::Invalid("cache result count"));
    }
    let mut results = Vec::with_capacity(n);
    for _ in 0..n {
        results.push(match get_u8(&mut cur)? {
            0 => Ok(get_analysis(&mut cur, lex)?),
            1 => Err(get_error(&mut cur)?),
            _ => return Err(ApkError::Invalid("cache result tag")),
        });
    }
    if !cur.is_empty() {
        return Err(ApkError::Invalid("cache trailing bytes"));
    }
    Ok(results)
}

/// Load a shard's cached results, re-interning symbols into `lex`.
///
/// Returns `None` — a cache miss — when the file is absent, keyed to a
/// different [`ShardStamp`] than the shard currently on disk, or damaged
/// in any way. Never returns partial results.
pub(crate) fn load_result_cache(
    path: &Path,
    stamp: ShardStamp,
    lex: &mut LocalInterner,
) -> Option<Vec<Result<AppAnalysis, ApkError>>> {
    let raw = fs::read(path).ok()?;
    if raw.len() < CACHE_PREFIX || raw[..4] != CACHE_MAGIC {
        return None;
    }
    if u16::from_le_bytes([raw[4], raw[5]]) != CACHE_VERSION {
        return None;
    }
    let stored_stamp = ShardStamp {
        checksum: u32::from_le_bytes([raw[6], raw[7], raw[8], raw[9]]),
        file_len: u64::from_le_bytes(raw[10..18].try_into().unwrap()),
    };
    if stored_stamp != stamp {
        return None;
    }
    let body_checksum = u32::from_le_bytes(raw[18..22].try_into().unwrap());
    if adler32(&raw[CACHE_PREFIX..]) != body_checksum {
        return None;
    }
    parse_body(&raw[CACHE_PREFIX..], lex).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp() -> ShardStamp {
        ShardStamp {
            checksum: 0xabcd_1234,
            file_len: 777,
        }
    }

    fn sample_results(lex: &mut LocalInterner) -> Vec<Result<AppAnalysis, ApkError>> {
        let analysis = AppAnalysis {
            meta: AppMeta {
                package: "com.cached.app".into(),
                on_play_store: true,
                downloads: 5_000_000,
                category: PlayCategory::Social,
                last_update_day: 901,
            },
            package: "com.cached.app".into(),
            webview_sites: vec![WebViewSiteSummary {
                method: lex.intern("loadUrl"),
                method_idx: 0,
                caller_class: lex.intern("com/sdk/ads/Banner"),
                caller_package: Some(PkgId(lex.intern("com.sdk.ads"))),
                label: LabelId::Sdk(3),
                in_deep_link_activity: false,
                is_load_method: true,
                argument: Some(lex.intern("https://ads.example/")),
                origin: UrlOrigin::Resolved,
            }],
            ct_sites: vec![CtSiteSummary {
                method: lex.intern("launchUrl"),
                is_launch: true,
                caller_class: lex.intern("com/app/Main"),
                caller_package: None,
                label: LabelId::Unlabeled,
                in_deep_link_activity: true,
                argument: None,
                origin: UrlOrigin::Unknown,
            }],
            custom_webview_classes: vec![lex.intern("com/app/MyWebView")],
            unreachable_webview_sites: 2,
        };
        vec![
            Ok(analysis),
            Err(ApkError::ChecksumMismatch {
                stored: 1,
                computed: 2,
            }),
            Err(ApkError::Truncated { context: "varint" }),
            Err(ApkError::AnalysisPanic {
                message: "injected".into(),
            }),
        ]
    }

    fn resolve_all(a: &AppAnalysis, lex: &LocalInterner) -> Vec<String> {
        let mut out = Vec::new();
        let mut a = a.clone();
        a.remap_symbols(&mut |s| {
            out.push(lex.resolve(s).to_owned());
            s
        });
        out
    }

    #[test]
    fn roundtrip_preserves_results_across_lexicons() {
        let dir = std::env::temp_dir().join(format!("wla-cache-rt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-00000.done");

        let mut writer_lex = LocalInterner::new();
        let results = sample_results(&mut writer_lex);
        let refs: Vec<&Result<AppAnalysis, ApkError>> = results.iter().collect();
        write_result_cache(&path, stamp(), &refs, &writer_lex).unwrap();

        // Load into a *different* lexicon that already holds other strings
        // (so symbol ids cannot accidentally line up).
        let mut reader_lex = LocalInterner::new();
        reader_lex.intern("unrelated");
        reader_lex.intern("strings");
        let back = load_result_cache(&path, stamp(), &mut reader_lex).unwrap();
        assert_eq!(back.len(), results.len());
        match (&results[0], &back[0]) {
            (Ok(orig), Ok(loaded)) => {
                assert_eq!(orig.meta, loaded.meta);
                assert_eq!(orig.package, loaded.package);
                assert_eq!(
                    orig.unreachable_webview_sites,
                    loaded.unreachable_webview_sites
                );
                // Symbol ids differ; resolved strings must agree, in the
                // same remap traversal order (what join-time ids key on).
                assert_eq!(
                    resolve_all(orig, &writer_lex),
                    resolve_all(loaded, &reader_lex)
                );
            }
            other => panic!("expected Ok/Ok, got {other:?}"),
        }
        for i in 1..results.len() {
            assert_eq!(results[i], back[i], "error {i} did not roundtrip");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_stamp_is_a_miss() {
        let dir = std::env::temp_dir().join(format!("wla-cache-stale-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.done");
        let lex = LocalInterner::new();
        write_result_cache(&path, stamp(), &[], &lex).unwrap();
        let mut rl = LocalInterner::new();
        assert!(load_result_cache(&path, stamp(), &mut rl).is_some());
        let other = ShardStamp {
            checksum: stamp().checksum ^ 1,
            ..stamp()
        };
        assert!(load_result_cache(&path, other, &mut rl).is_none());
        let other = ShardStamp {
            file_len: stamp().file_len + 1,
            ..stamp()
        };
        assert!(load_result_cache(&path, other, &mut rl).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damage_is_a_miss_never_partial() {
        let dir = std::env::temp_dir().join(format!("wla-cache-damage-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.done");
        let mut lex = LocalInterner::new();
        let results = sample_results(&mut lex);
        let refs: Vec<&Result<AppAnalysis, ApkError>> = results.iter().collect();
        write_result_cache(&path, stamp(), &refs, &lex).unwrap();
        let pristine = fs::read(&path).unwrap();
        // Truncations and bit flips anywhere must miss, not half-load.
        for cut in (0..pristine.len()).step_by(pristine.len() / 17 + 1) {
            fs::write(&path, &pristine[..cut]).unwrap();
            let mut rl = LocalInterner::new();
            assert!(
                load_result_cache(&path, stamp(), &mut rl).is_none(),
                "cut {cut}"
            );
        }
        for pos in [0usize, 5, 12, 20, pristine.len() / 2, pristine.len() - 1] {
            let mut bad = pristine.clone();
            bad[pos] ^= 0x10;
            fs::write(&path, &bad).unwrap();
            let mut rl = LocalInterner::new();
            assert!(
                load_result_cache(&path, stamp(), &mut rl).is_none(),
                "flip {pos}"
            );
        }
        // Missing file: miss.
        fs::remove_file(&path).unwrap();
        let mut rl = LocalInterner::new();
        assert!(load_result_cache(&path, stamp(), &mut rl).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }
}
