//! Streamed-shard ⇔ in-memory equivalence: analyzing a sharded on-disk
//! corpus through `run_pipeline_streamed` must produce **bit-identical**
//! results to loading the same apps into memory and running
//! `run_pipeline` — across worker counts, shard sizes, mmap vs buffered
//! sources, corrupted entries, and resume-after-partial-run.

use proptest::prelude::*;
use std::path::PathBuf;
use wla_corpus::{write_sharded_corpus, CorpusConfig, GeneratedApp, Generator};
use wla_sdk_index::SdkIndex;
use wla_static::stream::MANIFEST_SUBDIR;
use wla_static::{
    aggregate, run_pipeline, run_pipeline_streamed, CorpusInput, PipelineConfig, PipelineOutput,
    StreamConfig, StudyResults,
};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "wla-stream-eq-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn corpus(scale: u32, seed: u64, corrupt: f64) -> Vec<GeneratedApp> {
    let catalog = SdkIndex::paper();
    let cfg = CorpusConfig {
        scale,
        seed,
        corrupt_fraction: corrupt,
        ..CorpusConfig::default()
    };
    Generator::new(&catalog, cfg).generate()
}

fn in_memory_baseline(apps: &[GeneratedApp], catalog: &SdkIndex) -> (PipelineOutput, StudyResults) {
    let inputs: Vec<CorpusInput> = apps
        .iter()
        .map(|a| CorpusInput {
            meta: a.spec.meta.clone(),
            bytes: a.bytes.clone(),
        })
        .collect();
    let output = run_pipeline(
        &inputs,
        catalog,
        PipelineConfig {
            workers: 1,
            ..PipelineConfig::default()
        },
    );
    let results = aggregate(&output, catalog, 1);
    (output, results)
}

/// Full bit-identity check: per-app results (values and global symbol
/// ids), interner contents, and aggregated study results.
fn assert_outputs_identical(streamed: &PipelineOutput, baseline: &PipelineOutput) {
    assert_eq!(streamed.results.len(), baseline.results.len());
    for (i, (s, b)) in streamed.results.iter().zip(&baseline.results).enumerate() {
        match (s, b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "analysis diverged at input {i}"),
            (Err(x), Err(y)) => assert_eq!(x, y, "error diverged at input {i}"),
            other => panic!("ok/err mismatch at input {i}: {other:?}"),
        }
    }
    assert_eq!(streamed.interner.len(), baseline.interner.len());
    let (ss, bs) = (streamed.symbols(), baseline.symbols());
    for a in streamed.analyzed() {
        for site in &a.webview_sites {
            assert_eq!(ss.resolve(site.method), bs.resolve(site.method));
            assert_eq!(ss.resolve(site.caller_class), bs.resolve(site.caller_class));
        }
    }
}

#[test]
fn streamed_matches_in_memory_across_workers_and_shard_sizes() {
    let catalog = SdkIndex::paper();
    let apps = corpus(2_000, 41, 0.1);
    let (baseline, baseline_study) = in_memory_baseline(&apps, &catalog);
    for per_shard in [3usize, 16] {
        let dir = temp_dir(&format!("wk-{per_shard}"));
        write_sharded_corpus(&dir, &apps, per_shard).unwrap();
        for workers in [1usize, 2, 4, 8] {
            let out = run_pipeline_streamed(
                &dir,
                &catalog,
                StreamConfig {
                    pipeline: PipelineConfig {
                        workers,
                        ..PipelineConfig::default()
                    },
                    resume: false,
                    ..StreamConfig::default()
                },
            )
            .unwrap();
            assert_outputs_identical(&out, &baseline);
            assert_eq!(aggregate(&out, &catalog, 1), baseline_study);
            assert_eq!(out.stats.stream.entries_streamed, apps.len());
            assert_eq!(out.stats.stream.shards_cached, 0);
            assert_eq!(out.stats.stream.shard_failures, 0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn buffered_source_matches_mmap() {
    let catalog = SdkIndex::paper();
    let apps = corpus(3_000, 17, 0.15);
    let dir = temp_dir("buffered");
    write_sharded_corpus(&dir, &apps, 7).unwrap();
    let run = |mmap: bool| {
        run_pipeline_streamed(
            &dir,
            &catalog,
            StreamConfig {
                pipeline: PipelineConfig {
                    workers: 4,
                    ..PipelineConfig::default()
                },
                mmap,
                resume: false,
            },
        )
        .unwrap()
    };
    let mapped = run(true);
    let buffered = run(false);
    assert_outputs_identical(&mapped, &buffered);
    // mmap accounting only on the mapped run (when the platform maps).
    assert_eq!(buffered.stats.stream.bytes_mapped, 0);
    if cfg!(unix) {
        assert!(mapped.stats.stream.bytes_mapped > 0);
        assert!(mapped.stats.stream.peak_mapped_bytes > 0);
        assert!(mapped.stats.stream.peak_mapped_bytes <= mapped.stats.stream.bytes_mapped);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_after_partial_run_is_bit_identical() {
    let catalog = SdkIndex::paper();
    let apps = corpus(2_000, 29, 0.12);
    let (baseline, baseline_study) = in_memory_baseline(&apps, &catalog);
    let dir = temp_dir("resume");
    write_sharded_corpus(&dir, &apps, 5).unwrap();
    let config = StreamConfig {
        pipeline: PipelineConfig {
            workers: 3,
            ..PipelineConfig::default()
        },
        ..StreamConfig::default()
    };

    // First full run populates the manifest.
    let first = run_pipeline_streamed(&dir, &catalog, config).unwrap();
    assert_outputs_identical(&first, &baseline);
    assert_eq!(first.stats.stream.shards_cached, 0);

    // Simulate a partial previous run: drop some of the caches.
    let manifest = dir.join(MANIFEST_SUBDIR);
    let mut dropped = 0usize;
    for (i, entry) in std::fs::read_dir(&manifest).unwrap().enumerate() {
        if i % 3 == 0 {
            std::fs::remove_file(entry.unwrap().path()).unwrap();
            dropped += 1;
        }
    }
    assert!(dropped > 0);
    let partial = run_pipeline_streamed(&dir, &catalog, config).unwrap();
    assert_outputs_identical(&partial, &baseline);
    assert_eq!(aggregate(&partial, &catalog, 1), baseline_study);
    assert_eq!(partial.stats.stream.shards_read, dropped);
    assert!(partial.stats.stream.shards_cached > 0);
    assert!(partial.stats.stream.entries_cached > 0);

    // Third run: everything cached, still identical.
    let resumed = run_pipeline_streamed(&dir, &catalog, config).unwrap();
    assert_outputs_identical(&resumed, &baseline);
    assert_eq!(resumed.stats.stream.shards_read, 0);
    assert_eq!(resumed.stats.stream.entries_cached, apps.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rewritten_shard_invalidates_its_cache() {
    let catalog = SdkIndex::paper();
    let apps = corpus(3_000, 53, 0.0);
    let dir = temp_dir("invalidate");
    let paths = write_sharded_corpus(&dir, &apps, 4).unwrap();
    let config = StreamConfig::default();
    let first = run_pipeline_streamed(&dir, &catalog, config).unwrap();
    assert_eq!(first.stats.stream.shards_cached, 0);

    // Rewrite shard 0 with different contents (drop its last entry).
    let shard0 = wla_corpus::Shard::open(&paths[0]).unwrap();
    let metas: Vec<_> = (0..shard0.len() - 1)
        .map(|i| (shard0.entry_meta(i).clone(), shard0.entry_bytes(i).to_vec()))
        .collect();
    drop(shard0);
    let entries: Vec<(&wla_corpus::AppMeta, &[u8])> =
        metas.iter().map(|(m, b)| (m, b.as_slice())).collect();
    wla_corpus::write_shard(&paths[0], &entries).unwrap();

    let second = run_pipeline_streamed(&dir, &catalog, config).unwrap();
    // The rewritten shard misses its stale cache and is re-analyzed; the
    // untouched shards come back from cache.
    assert_eq!(second.stats.stream.shards_read, 1);
    assert_eq!(second.stats.stream.shards_cached, paths.len() - 1);
    assert_eq!(second.results.len(), first.results.len() - 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_shard_file_is_counted_and_skipped() {
    let catalog = SdkIndex::paper();
    let apps = corpus(3_000, 61, 0.0);
    let dir = temp_dir("corrupt-shard");
    let paths = write_sharded_corpus(&dir, &apps, 6).unwrap();
    assert!(paths.len() >= 2);
    // Damage the second shard's payload region.
    let mut raw = std::fs::read(&paths[1]).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0xff;
    std::fs::write(&paths[1], &raw).unwrap();

    let out = run_pipeline_streamed(
        &dir,
        &catalog,
        StreamConfig {
            resume: false,
            ..StreamConfig::default()
        },
    )
    .unwrap();
    assert_eq!(out.stats.stream.shard_failures, 1);
    assert_eq!(
        out.stats
            .stream
            .shard_failure_kinds
            .get("checksum-mismatch"),
        Some(&1)
    );
    // Every entry of every *other* shard still analyzed, in order.
    let shard1_entries = wla_corpus::Shard::open(&paths[0]).unwrap().len();
    assert_eq!(out.results.len(), apps.len() - 6);
    assert!(out.results.len() >= shard1_entries);
    // The surviving prefix matches the in-memory analysis of shard 0.
    let (baseline, _) = in_memory_baseline(&apps[..shard1_entries], &catalog);
    for (i, (s, b)) in out
        .results
        .iter()
        .zip(&baseline.results)
        .take(shard1_entries)
        .enumerate()
    {
        assert_eq!(s.is_ok(), b.is_ok(), "index {i}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn prop_streamed_equals_in_memory(
        seed in 0u64..500,
        workers in 1usize..9,
        per_shard in 1usize..20,
        corrupt in prop_oneof![Just(0.0f64), Just(0.2f64)],
        resume in any::<bool>(),
    ) {
        let catalog = SdkIndex::paper();
        let apps = corpus(4_000, seed, corrupt);
        let (baseline, baseline_study) = in_memory_baseline(&apps, &catalog);
        let dir = temp_dir(&format!("prop-{seed}-{workers}-{per_shard}-{resume}"));
        write_sharded_corpus(&dir, &apps, per_shard).unwrap();
        let config = StreamConfig {
            pipeline: PipelineConfig { workers, ..PipelineConfig::default() },
            resume,
            ..StreamConfig::default()
        };
        let out = run_pipeline_streamed(&dir, &catalog, config).unwrap();
        prop_assert_eq!(out.results.len(), baseline.results.len());
        for (s, b) in out.results.iter().zip(&baseline.results) {
            match (s, b) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                (Err(x), Err(y)) => prop_assert_eq!(x, y),
                other => prop_assert!(false, "ok/err mismatch: {other:?}"),
            }
        }
        prop_assert_eq!(aggregate(&out, &catalog, 1), baseline_study);
        // Stats invariants carry over to the streamed path.
        let s = &out.stats;
        prop_assert_eq!(s.total, apps.len());
        prop_assert_eq!(s.analyzed + s.broken, s.total);
        prop_assert_eq!(s.failure_kinds.values().sum::<usize>(), s.broken);
        prop_assert_eq!(
            s.stream.entries_streamed + s.stream.entries_cached,
            apps.len()
        );
        if resume {
            // A second run serves everything from the manifest, identically.
            let again = run_pipeline_streamed(&dir, &catalog, config).unwrap();
            prop_assert_eq!(again.stats.stream.entries_cached, apps.len());
            prop_assert_eq!(again.stats.stream.shards_read, 0);
            prop_assert_eq!(aggregate(&again, &catalog, 1), baseline_study);
            for (s, b) in again.results.iter().zip(&baseline.results) {
                match (s, b) {
                    (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                    (Err(x), Err(y)) => prop_assert_eq!(x, y),
                    other => prop_assert!(false, "resume mismatch: {other:?}"),
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Paper-scale acceptance: ≥50K apps streamed from disk shards with
/// results identical at several worker counts, plus a full resume pass.
/// Ignored in tier-1 (debug-mode) runs — execute with
/// `cargo test --release -p wla-static --test stream_equivalence -- --ignored`.
#[test]
#[ignore = "paper-scale: run in release mode"]
fn paper_scale_stream_50k() {
    let catalog = SdkIndex::paper();
    // scale=2 ⇒ 146_800 / 2 = 73_400 apps.
    let apps = corpus(2, 4242, 0.0016);
    assert!(
        apps.len() >= 50_000,
        "need a 50K+ corpus, got {}",
        apps.len()
    );
    let dir = temp_dir("50k");
    write_sharded_corpus(&dir, &apps, 512).unwrap();

    let run = |workers: usize, resume: bool| {
        run_pipeline_streamed(
            &dir,
            &catalog,
            StreamConfig {
                pipeline: PipelineConfig {
                    workers,
                    stage_timings: false,
                    ..PipelineConfig::default()
                },
                resume,
                ..StreamConfig::default()
            },
        )
        .unwrap()
    };

    let first = run(1, false);
    let study = aggregate(&first, &catalog, 1);
    eprintln!(
        "paper-scale: {} apps, {} shards, {:.1} MiB mapped total, {:.1} MiB peak concurrent",
        apps.len(),
        first.stats.stream.shards_read,
        first.stats.stream.bytes_mapped as f64 / (1024.0 * 1024.0),
        first.stats.stream.peak_mapped_bytes as f64 / (1024.0 * 1024.0),
    );
    for workers in [2usize, 4, 8] {
        let out = run(workers, false);
        assert_eq!(out.results.len(), first.results.len());
        for (i, (a, b)) in out.results.iter().zip(&first.results).enumerate() {
            assert_eq!(a, b, "diverged at {i} with {workers} workers");
        }
        assert_eq!(aggregate(&out, &catalog, 1), study);
    }

    // Resume: populate the manifest, then a second pass must skip every
    // shard and reproduce the study bit-for-bit.
    let warm = run(8, true);
    eprintln!(
        "paper-scale @8 workers: {:.1} MiB peak concurrently mapped",
        warm.stats.stream.peak_mapped_bytes as f64 / (1024.0 * 1024.0),
    );
    assert_eq!(aggregate(&warm, &catalog, 1), study);
    let resumed = run(8, true);
    assert_eq!(resumed.stats.stream.shards_read, 0);
    assert_eq!(resumed.stats.stream.entries_cached, apps.len());
    assert_eq!(aggregate(&resumed, &catalog, 1), study);
    std::fs::remove_dir_all(&dir).unwrap();
}
