//! # whatcha-lookin-at
//!
//! Umbrella crate for the reproduction of *"Whatcha Lookin' At:
//! Investigating Third-Party Web Content in Popular Android Apps"*
//! (Kuchhal, Ramakrishnan, Li — IMC 2024).
//!
//! Re-exports the public API of [`wla_core`]; see that crate, `README.md`,
//! and `DESIGN.md` for the architecture and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use wla_core::*;
