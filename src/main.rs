//! `wla` — command-line front end for the reproduction.
//!
//! ```text
//! wla static  [--scale N] [--seed N]   run the §3.1 static campaign
//! wla funnel  [--seed N]               run the Table 2 metadata funnel
//! wla dynamic                          run the §3.2 dynamic campaign
//! wla crawl   [APP ...]                run the 100-site crawl (default: LinkedIn Kik)
//! wla labels  [--scale N]              emit privacy nutrition labels
//! wla all     [--scale N]              everything, with comparisons
//! wla serve   [--port N] [--smoke]     analysis-as-a-service HTTP server
//! ```

use whatcha_lookin_at::wla_report::thousands;
use whatcha_lookin_at::wla_static::{grade_distribution, privacy_label};
use whatcha_lookin_at::{experiments, Study};

struct Args {
    command: String,
    scale: u32,
    seed: u64,
    json: bool,
    port: u16,
    smoke: bool,
    rest: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: String::new(),
        scale: 100,
        seed: 0xDA7A_5EED,
        json: false,
        port: 0,
        smoke: false,
        rest: Vec::new(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                if let Some(v) = argv.get(i + 1).and_then(|v| v.parse().ok()) {
                    args.scale = v;
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = argv.get(i + 1).and_then(|v| v.parse().ok()) {
                    args.seed = v;
                    i += 1;
                }
            }
            "--json" => args.json = true,
            "--port" => {
                if let Some(v) = argv.get(i + 1).and_then(|v| v.parse().ok()) {
                    args.port = v;
                    i += 1;
                }
            }
            "--smoke" => args.smoke = true,
            other if args.command.is_empty() => args.command = other.to_owned(),
            other => args.rest.push(other.to_owned()),
        }
        i += 1;
    }
    args
}

fn usage() -> ! {
    eprintln!(
        "usage: wla <static|funnel|dynamic|crawl|labels|all|serve> \
         [--scale N] [--seed N] [--json] [--port N] [--smoke] [args…]"
    );
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    let study = Study::new(args.scale, args.seed);
    let print_exp = |exp: &experiments::Experiment| {
        if args.json {
            println!(
                "{}",
                whatcha_lookin_at::wla_report::json::comparison_json(&exp.comparison)
            );
        } else {
            print_text(exp);
        }
    };

    match args.command.as_str() {
        "static" => {
            eprintln!("static campaign at scale 1:{} …", study.scale);
            let run = study.run_static();
            for exp in [
                experiments::table3(&study, &run),
                experiments::table4(&study, &run),
                experiments::table5(&study, &run),
                experiments::table7(&study, &run),
                experiments::fig3(&study, &run),
                experiments::fig4(&study, &run),
            ] {
                print_exp(&exp);
            }
        }
        "funnel" => {
            let run = study.run_static();
            let funnel = study.run_funnel(&run);
            print_exp(&experiments::table2(&study, &funnel));
        }
        "dynamic" => {
            let run = study.run_dynamic();
            for exp in [
                experiments::table6(&run),
                experiments::table8(&run),
                experiments::table9(&run),
            ] {
                print_exp(&exp);
            }
        }
        "crawl" => {
            let apps: Vec<&str> = if args.rest.is_empty() {
                vec!["LinkedIn", "Kik"]
            } else {
                args.rest.iter().map(String::as_str).collect()
            };
            eprintln!("crawling 100 sites through {apps:?} + baseline …");
            let run = study.run_crawl_parallel(
                Some(&apps),
                whatcha_lookin_at::wla_dynamic::CrawlConfig::default(),
            );
            print_exp(&experiments::fig6(&run));
            print_exp(&experiments::fig7());
            eprintln!("{}", experiments::crawl_stats_report(&run).render());
        }
        "labels" => {
            eprintln!("deriving privacy labels at scale 1:{} …", study.scale);
            let run = study.run_static();
            let analyses: Vec<_> = {
                // Re-run analysis output through the label derivation.
                let inputs: Vec<whatcha_lookin_at::wla_static::CorpusInput> = run
                    .corpus
                    .iter()
                    .map(|g| whatcha_lookin_at::wla_static::CorpusInput {
                        meta: g.spec.meta.clone(),
                        bytes: g.bytes.clone(),
                    })
                    .collect();
                let out = whatcha_lookin_at::wla_static::run_pipeline(
                    &inputs,
                    &study.catalog,
                    whatcha_lookin_at::wla_static::PipelineConfig::default(),
                );
                out.analyzed()
                    .map(|a| privacy_label(a, &study.catalog))
                    .collect()
            };
            println!(
                "privacy-label grade distribution over {} apps:",
                analyses.len()
            );
            for (grade, n) in grade_distribution(&analyses) {
                println!(
                    "  {:45} {:>6} apps (×{} ≈ {})",
                    grade.label(),
                    n,
                    study.scale,
                    thousands(n as u64 * study.scale as u64)
                );
            }
            println!("\nexample labels:");
            for label in analyses.iter().take(3) {
                println!("{}", label.render());
            }
        }
        "all" => {
            let static_run = study.run_static();
            let funnel = study.run_funnel(&static_run);
            let dynamic_run = study.run_dynamic();
            let crawl_run = study
                .run_crawl_parallel(None, whatcha_lookin_at::wla_dynamic::CrawlConfig::default());
            for exp in [
                experiments::table2(&study, &funnel),
                experiments::table3(&study, &static_run),
                experiments::table4(&study, &static_run),
                experiments::table5(&study, &static_run),
                experiments::table6(&dynamic_run),
                experiments::table7(&study, &static_run),
                experiments::table8(&dynamic_run),
                experiments::table9(&dynamic_run),
                experiments::fig3(&study, &static_run),
                experiments::fig4(&study, &static_run),
                experiments::fig6(&crawl_run),
                experiments::fig7(),
            ] {
                print_exp(&exp);
            }
        }
        "serve" => serve(&args),
        _ => usage(),
    }
}

/// `wla serve`: front both pipelines over one nonblocking HTTP server.
///
/// `--port 0` (the default) binds an ephemeral port and prints it.
/// `--smoke` self-checks `GET /healthz` over loopback, prints the server
/// stats table, and exits — the CI smoke path.
fn serve(args: &Args) {
    use std::sync::Arc;
    use whatcha_lookin_at::wla_net::{
        fetch, BeaconStore, NetLog, Request, Server, ServerConfig, Status,
    };

    let catalog = Arc::new(whatcha_lookin_at::wla_sdk_index::SdkIndex::paper());
    let page_html = Arc::new(whatcha_lookin_at::wla_web::testpage::test_page_html());
    let store = BeaconStore::default();
    let log = NetLog::new();
    let router = whatcha_lookin_at::service_router(catalog, page_html, store, log).into_handler();
    let mut server = Server::bind(("127.0.0.1", args.port), router, ServerConfig::default())
        .unwrap_or_else(|e| {
            eprintln!("bind failed: {e}");
            std::process::exit(1);
        });
    println!("serving on http://{}", server.addr());
    eprintln!("routes: GET /healthz, POST /analyze, GET /page, POST /beacon, POST /netlog, GET /netlog/hosts");

    if args.smoke {
        let resp = fetch(server.addr(), Request::get("/healthz")).unwrap_or_else(|e| {
            eprintln!("smoke healthz failed: {e}");
            std::process::exit(1);
        });
        if resp.status != Status::Ok || &resp.body[..] != b"ok" {
            eprintln!("smoke healthz returned {:?}", resp.status);
            std::process::exit(1);
        }
        let report = whatcha_lookin_at::server_stats_report(&server.stats().snapshot());
        println!("{}", report.render());
        server.shutdown();
        println!("smoke ok");
        return;
    }

    // Foreground service: report stats once a minute until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(60));
        let report = whatcha_lookin_at::server_stats_report(&server.stats().snapshot());
        eprintln!("{}", report.render());
    }
}

fn print_text(exp: &experiments::Experiment) {
    println!("=== {} ===\n", exp.id);
    if !exp.table.headers.is_empty() || !exp.table.rows.is_empty() {
        println!("{}", exp.table.render());
    }
    for fig in &exp.figures {
        println!("{fig}");
    }
    println!("{}", exp.comparison.to_table().render());
}
