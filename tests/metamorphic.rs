//! Metamorphic properties of the pipeline: transformations of an app that
//! must not (or must, in a precise way) change the analysis verdicts.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use whatcha_lookin_at::wla_corpus::ecosystem::{Ecosystem, EcosystemParams, MethodSet};
use whatcha_lookin_at::wla_corpus::lowering::lower;
use whatcha_lookin_at::wla_corpus::playstore::{AppMeta, PlayCategory};
use whatcha_lookin_at::wla_corpus::{CorpusConfig, Generator};
use whatcha_lookin_at::wla_sdk_index::SdkIndex;
use whatcha_lookin_at::wla_static::{
    aggregate, aggregate_string_oracle, analyze_app, run_pipeline, CorpusInput, PipelineConfig,
};

fn meta() -> AppMeta {
    AppMeta {
        package: "com.meta.morphic".into(),
        on_play_store: true,
        downloads: 3_000_000,
        category: PlayCategory::Entertainment,
        last_update_day: 700,
    }
}

fn spec(seed: u64) -> (SdkIndex, whatcha_lookin_at::wla_corpus::AppSpec) {
    let catalog = SdkIndex::paper();
    let eco = Ecosystem::new(&catalog, EcosystemParams::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let s = eco.sample_app(&mut rng, meta());
    (catalog, s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Noise classes are behaviour-free: changing their count never
    /// changes any verdict.
    #[test]
    fn noise_classes_are_inert(seed in 0u64..1_000, noise in 0u8..12) {
        let (catalog, mut s) = spec(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let base = analyze_app(meta(), &lower(&s, &catalog, &mut rng).encode()).unwrap();
        s.noise_classes = noise;
        let mut rng = StdRng::seed_from_u64(seed);
        let changed = analyze_app(meta(), &lower(&s, &catalog, &mut rng).encode()).unwrap();
        prop_assert_eq!(base.uses_webview(), changed.uses_webview());
        prop_assert_eq!(base.uses_custom_tabs(), changed.uses_custom_tabs());
        prop_assert_eq!(base.methods_used(), changed.methods_used());
    }

    /// Dead code toggles the discarded-site counter and nothing else.
    #[test]
    fn dead_code_only_moves_the_dead_counter(seed in 0u64..1_000) {
        let (catalog, mut s) = spec(seed);
        s.dead_code_webview = false;
        let mut rng = StdRng::seed_from_u64(seed);
        let without = analyze_app(meta(), &lower(&s, &catalog, &mut rng).encode()).unwrap();
        s.dead_code_webview = true;
        let mut rng = StdRng::seed_from_u64(seed);
        let with = analyze_app(meta(), &lower(&s, &catalog, &mut rng).encode()).unwrap();
        prop_assert_eq!(without.uses_webview(), with.uses_webview());
        prop_assert_eq!(without.methods_used(), with.methods_used());
        prop_assert_eq!(with.unreachable_webview_sites, without.unreachable_webview_sites + 1);
    }

    /// A deep link that renders in a WebView adds only *flagged* sites:
    /// third-party accounting is unchanged.
    #[test]
    fn deep_link_rendering_never_leaks_into_third_party_counts(seed in 0u64..1_000) {
        let (catalog, mut s) = spec(seed);
        s.deep_link = None;
        let mut rng = StdRng::seed_from_u64(seed);
        let without = analyze_app(meta(), &lower(&s, &catalog, &mut rng).encode()).unwrap();
        s.deep_link = Some(whatcha_lookin_at::wla_corpus::DeepLinkSpec {
            host: "first.party.example".into(),
            uses_webview: true,
        });
        let mut rng = StdRng::seed_from_u64(seed);
        let with = analyze_app(meta(), &lower(&s, &catalog, &mut rng).encode()).unwrap();
        prop_assert_eq!(without.uses_webview(), with.uses_webview());
        prop_assert_eq!(without.methods_used(), with.methods_used());
        // The flagged site exists, though.
        prop_assert_eq!(
            with.webview_sites.iter().filter(|x| x.in_deep_link_activity).count(),
            1
        );
    }

    /// Removing every behaviour yields a clean app.
    #[test]
    fn stripped_app_is_clean(seed in 0u64..1_000) {
        let (catalog, mut s) = spec(seed);
        s.sdks.clear();
        s.sdk_category_methods.clear();
        s.direct_wv_methods = MethodSet::EMPTY;
        s.direct_wv_subclass = false;
        s.direct_ct = false;
        s.deep_link = None;
        s.dead_code_webview = false;
        let mut rng = StdRng::seed_from_u64(seed);
        let analysis = analyze_app(meta(), &lower(&s, &catalog, &mut rng).encode()).unwrap();
        prop_assert!(!analysis.uses_webview());
        prop_assert!(!analysis.uses_custom_tabs());
        prop_assert!(analysis.webview_sites.is_empty());
        prop_assert!(analysis.ct_sites.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The interned aggregation path (u32 keys end to end) produces
    /// *identical* `StudyResults` to the string-path oracle on randomized
    /// corpora — including broken containers and any worker count.
    #[test]
    fn interned_aggregate_matches_string_oracle(
        seed in 0u64..10_000,
        workers in 1usize..8,
    ) {
        let catalog = SdkIndex::paper();
        let cfg = CorpusConfig {
            scale: 1_500,
            seed,
            corrupt_fraction: 0.1,
            ..CorpusConfig::default()
        };
        let inputs: Vec<CorpusInput> = Generator::new(&catalog, cfg)
            .generate()
            .into_iter()
            .map(|g| CorpusInput {
                meta: g.spec.meta.clone(),
                bytes: g.bytes,
            })
            .collect();
        let out = run_pipeline(
            &inputs,
            &catalog,
            PipelineConfig {
                workers,
                ..PipelineConfig::default()
            },
        );
        prop_assert_eq!(
            aggregate(&out, &catalog, 1),
            aggregate_string_oracle(&out, &catalog, 1)
        );
    }
}
