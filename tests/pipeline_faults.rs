//! Cross-crate fault-isolation check: a corpus containing deliberately
//! panicking containers must complete — every app accounted for, panics
//! converted to `ApkError::AnalysisPanic` and visible in the stats — and
//! the aggregation layer must count those apps as broken, not vanish them.

use whatcha_lookin_at::wla_apk::ApkError;
use whatcha_lookin_at::wla_corpus::{CorpusConfig, Generator};
use whatcha_lookin_at::wla_sdk_index::SdkIndex;
use whatcha_lookin_at::wla_static::{
    aggregate, analyze_app_timed_with, run_pipeline_with, CorpusInput, PipelineConfig,
};

/// Suppress the default panic-hook backtrace for the panics this test
/// injects on purpose, without hiding unexpected ones.
fn quiet_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.contains("injected fault"))
            .unwrap_or(false);
        if !injected {
            previous(info);
        }
    }));
}

#[test]
fn panicking_containers_do_not_abort_the_corpus_run() {
    quiet_injected_panics();
    let catalog = SdkIndex::paper();
    let cfg = CorpusConfig {
        scale: 1_000,
        seed: 4242,
        corrupt_fraction: 0.1,
        ..CorpusConfig::default()
    };
    let inputs: Vec<CorpusInput> = Generator::new(&catalog, cfg)
        .generate()
        .into_iter()
        .map(|g| CorpusInput {
            meta: g.spec.meta.clone(),
            bytes: g.bytes,
        })
        .collect();

    // Every 10th app trips a panic inside "analysis" — simulating the
    // pathological containers a 146.8K-app corpus inevitably contains.
    let output = run_pipeline_with(
        &inputs,
        &catalog,
        PipelineConfig {
            workers: 4,
            ..PipelineConfig::default()
        },
        |input, ctx| {
            let idx = inputs
                .iter()
                .position(|i| std::ptr::eq(i, input))
                .expect("input comes from the slice");
            if idx % 10 == 0 {
                panic!("injected fault in app {idx}");
            }
            analyze_app_timed_with(input.meta.clone(), &input.bytes, ctx)
        },
    );

    let expected_panics = inputs.len().div_ceil(10);
    assert_eq!(output.results.len(), inputs.len());
    assert_eq!(
        output.analyzed_count() + output.broken_count(),
        inputs.len(),
        "every app must be accounted for"
    );
    assert_eq!(output.stats.panicked, expected_panics);
    assert_eq!(
        output.stats.failure_kinds.get("analysis-panic"),
        Some(&expected_panics)
    );
    for (idx, result) in output.results.iter().enumerate() {
        if idx % 10 == 0 {
            match result {
                Err(ApkError::AnalysisPanic { message }) => {
                    assert!(message.contains(&format!("app {idx}")), "{message}");
                }
                other => panic!("index {idx}: expected AnalysisPanic, got {other:?}"),
            }
        }
    }

    // Aggregation counts panicked apps in the broken row (Table 2).
    let results = aggregate(&output, &catalog, 1);
    assert_eq!(results.analyzed + results.broken, inputs.len());
    assert!(results.broken >= expected_panics);
}
