//! Structural invariants of the aggregated study results, checked across
//! random corpus seeds — the regression net under every table builder.

use proptest::prelude::*;
use whatcha_lookin_at::wla_corpus::{CorpusConfig, Generator};
use whatcha_lookin_at::wla_sdk_index::SdkIndex;
use whatcha_lookin_at::wla_static::{aggregate, run_pipeline, CorpusInput, PipelineConfig};

fn results(seed: u64) -> whatcha_lookin_at::wla_static::StudyResults {
    let catalog = SdkIndex::paper();
    let cfg = CorpusConfig {
        scale: 1_000,
        seed,
        ..CorpusConfig::default()
    };
    let inputs: Vec<CorpusInput> = Generator::new(&catalog, cfg)
        .generate()
        .into_iter()
        .map(|g| CorpusInput {
            meta: g.spec.meta.clone(),
            bytes: g.bytes,
        })
        .collect();
    let out = run_pipeline(&inputs, &catalog, PipelineConfig::default());
    aggregate(&out, &catalog, 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn aggregate_invariants_hold(seed in 0u64..10_000) {
        let r = results(seed);

        // Set relations.
        prop_assert!(r.both_apps <= r.webview_apps.min(r.ct_apps));
        prop_assert!(r.webview_apps_via_top_sdks <= r.webview_apps);
        prop_assert!(r.ct_apps_via_top_sdks <= r.ct_apps);
        prop_assert!(r.both_apps_via_top_sdks <= r.both_apps);
        prop_assert!(r.webview_apps <= r.analyzed);

        // Per-method: via-SDK never exceeds total; every method total never
        // exceeds the WebView-app count; loadUrl is never beaten.
        let load_url = r.method_census[0].apps;
        for row in &r.method_census {
            prop_assert!(row.apps_via_top_sdks <= row.apps, "{}", row.method);
            prop_assert!(row.apps <= r.webview_apps, "{}", row.method);
            prop_assert!(row.apps <= load_url.max(row.apps), "{}", row.method);
        }

        // Ablation counters only ever add apps.
        prop_assert!(r.webview_apps_without_deeplink_exclusion >= r.webview_apps);
        prop_assert!(r.webview_apps_without_reachability >= r.webview_apps_without_deeplink_exclusion);

        // Heatmap fractions are probabilities over positive denominators.
        for row in &r.heatmap {
            prop_assert!(row.apps > 0);
            for f in row.method_fraction {
                prop_assert!((0.0..=1.0).contains(&f));
            }
        }

        // SDK usage rows: every listed SDK has some usage, and no count
        // exceeds the corpus.
        for row in &r.sdk_usage {
            prop_assert!(row.wv_apps + row.ct_apps > 0, "{}", row.name);
            prop_assert!(row.wv_apps <= r.analyzed && row.ct_apps <= r.analyzed);
        }

        // Figure 3 panels: totals equal the sum of their breakdowns.
        for panel in [&r.category_webview, &r.category_ct] {
            for row in panel {
                let sum: usize = row.by_sdk_category.iter().map(|(_, n)| n).sum();
                prop_assert_eq!(row.total, sum);
            }
        }
    }
}
