//! Equivalence pins for the zero-copy fast paths.
//!
//! The hot pipeline decodes SDEX blobs zero-copy (`Dex::decode_bytes`,
//! span-based string pool) and computes the WebView subclass closure
//! directly on dex class tables. Both keep their slow, obviously-correct
//! counterparts as oracles: `sdex::oracle::decode` (per-entry owned
//! strings) and the lift-to-Java + re-parse route. These tests pin the
//! fast paths to the oracles on valid corpora *and* on byte-level
//! corruptions, and pin pipeline results across worker counts.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use whatcha_lookin_at::wla_apk::corrupt::{corrupt, CorruptionKind};
use whatcha_lookin_at::wla_apk::sdex::oracle;
use whatcha_lookin_at::wla_apk::{Dex, Sapk, SectionTag};
use whatcha_lookin_at::wla_corpus::ecosystem::{Ecosystem, EcosystemParams};
use whatcha_lookin_at::wla_corpus::lowering::lower;
use whatcha_lookin_at::wla_corpus::playstore::{AppMeta, PlayCategory};
use whatcha_lookin_at::wla_corpus::{CorpusConfig, Generator};
use whatcha_lookin_at::wla_decompile::{lift_dex, webview_subclasses, webview_subclasses_dex};
use whatcha_lookin_at::wla_sdk_index::SdkIndex;
use whatcha_lookin_at::wla_static::{run_pipeline, CorpusInput, PipelineConfig};

fn meta() -> AppMeta {
    AppMeta {
        package: "com.equiv.app".into(),
        on_play_store: true,
        downloads: 5_000_000,
        category: PlayCategory::Social,
        last_update_day: 900,
    }
}

/// The SDEX blobs of one generated app.
fn dex_blobs(seed: u64) -> Vec<Vec<u8>> {
    let catalog = SdkIndex::paper();
    let eco = Ecosystem::new(&catalog, EcosystemParams::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = eco.sample_app(&mut rng, meta());
    let bytes = lower(&spec, &catalog, &mut rng).encode();
    let apk = Sapk::decode(&bytes).expect("generated app decodes");
    apk.sections()
        .iter()
        .filter(|s| s.tag == SectionTag::Dex)
        .map(|s| s.data.to_vec())
        .collect()
}

/// Zero-copy and oracle decoders must agree exactly: same structure on
/// `Ok`, same error kind on `Err`.
fn assert_decoders_agree(blob: &[u8], ctx: &str) {
    let fast = Dex::decode(blob);
    let slow = oracle::decode(blob);
    match (fast, slow) {
        (Ok(fast), Ok(slow)) => assert_eq!(fast, slow, "{ctx}: structures differ"),
        (Err(fast), Err(slow)) => {
            assert_eq!(fast.kind(), slow.kind(), "{ctx}: error kinds differ")
        }
        (fast, slow) => panic!("{ctx}: outcomes differ: fast={fast:?} slow={slow:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On every generated SDEX blob, and on every byte-level corruption of
    /// it — truncations, bit flips past the header, clobbered magic, and
    /// rechecksummed clobbers that reach the inner validators (bad UTF-8
    /// mid-pool included) — the zero-copy decoder is indistinguishable
    /// from the owning oracle.
    #[test]
    fn zero_copy_matches_oracle_under_corruption(
        seed in 0u64..24,
        kind in prop_oneof![
            (4u8..=255).prop_map(|keep_num| CorruptionKind::Truncate { keep_num }),
            any::<u8>().prop_map(|pos_num| CorruptionKind::BitFlip { pos_num }),
            Just(CorruptionKind::ClobberMagic),
            any::<u8>().prop_map(|pos_num| CorruptionKind::ClobberRechecksum { pos_num }),
            any::<u8>().prop_map(|site_num| CorruptionKind::ClobberRegister { site_num }),
            any::<u8>().prop_map(|slot_num| CorruptionKind::ClobberLookupTable { slot_num }),
        ],
    ) {
        for (i, blob) in dex_blobs(seed).iter().enumerate() {
            assert_decoders_agree(blob, &format!("seed {seed} dex {i} (valid)"));
            let bad = corrupt(blob, kind);
            assert_decoders_agree(&bad, &format!("seed {seed} dex {i} {kind:?}"));
        }
    }

    /// Arbitrary byte soup: both decoders reject (or accept) identically.
    #[test]
    fn zero_copy_matches_oracle_on_noise(raw in proptest::collection::vec(any::<u8>(), 0..300)) {
        assert_decoders_agree(&raw, "noise");
    }
}

/// The dex-direct WebView subclass closure equals the paper-faithful
/// lift-to-Java + re-parse oracle over whole generated apps.
#[test]
fn dex_direct_subclasses_match_lift_parse_oracle() {
    for seed in 0..40u64 {
        let dexes: Vec<Dex> = dex_blobs(seed)
            .iter()
            .map(|b| Dex::decode(b).expect("generated dex decodes"))
            .collect();
        let mut lifted = Vec::new();
        for dex in &dexes {
            lifted.extend(lift_dex(dex));
        }
        assert_eq!(
            webview_subclasses_dex(&dexes),
            webview_subclasses(&lifted),
            "seed {seed}"
        );
    }
}

/// Pipeline results — analyses, errors, and global symbol ids — are a
/// pure function of the corpus, independent of worker count, on corpora
/// that include corrupted containers.
#[test]
fn pipeline_identical_across_worker_counts() {
    let catalog = SdkIndex::paper();
    let cfg = CorpusConfig {
        scale: 3_000,
        seed: 41,
        corrupt_fraction: 0.2,
        ..CorpusConfig::default()
    };
    let inputs: Vec<CorpusInput> = Generator::new(&catalog, cfg)
        .generate()
        .into_iter()
        .map(|g| CorpusInput {
            meta: g.spec.meta.clone(),
            bytes: g.bytes,
        })
        .collect();
    let baseline = run_pipeline(
        &inputs,
        &catalog,
        PipelineConfig {
            workers: 1,
            ..PipelineConfig::default()
        },
    );
    assert!(
        baseline.stats.broken > 0,
        "corpus should include broken apps"
    );
    for workers in [2usize, 4] {
        let run = run_pipeline(
            &inputs,
            &catalog,
            PipelineConfig {
                workers,
                ..PipelineConfig::default()
            },
        );
        assert_eq!(run.results.len(), baseline.results.len());
        for (i, (a, b)) in run.results.iter().zip(&baseline.results).enumerate() {
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x, y, "app {i}, workers {workers}"),
                (Err(x), Err(y)) => assert_eq!(x, y, "app {i}, workers {workers}"),
                other => panic!("app {i}, workers {workers}: outcome mismatch {other:?}"),
            }
        }
        assert_eq!(run.interner.len(), baseline.interner.len());
    }
}
