//! Cross-crate integration: the §3.2 dynamic campaign — device simulation,
//! Frida-analog hooks, real loopback HTTP beacons, and the security
//! contrasts of Table 1.

use whatcha_lookin_at::wla_device::browser::Browser;
use whatcha_lookin_at::wla_device::customtabs::CustomTab;
use whatcha_lookin_at::wla_device::iab::profile_for;
use whatcha_lookin_at::wla_device::webview::{PageSource, WebViewInstance};
use whatcha_lookin_at::wla_device::{FridaRecorder, Logcat};
use whatcha_lookin_at::wla_dynamic::iab_study::study_app;
use whatcha_lookin_at::wla_net::NetLog;
use whatcha_lookin_at::Study;

#[test]
fn full_dynamic_run_reproduces_tables_6_8_9() {
    let study = Study::new(1_000, 77);
    let run = study.run_dynamic();

    // Table 6 exactly.
    assert_eq!(run.table6.can_post_links, 38);
    assert_eq!(run.table6.opens_browser, 27);
    assert_eq!(run.table6.opens_webview, 10);
    assert_eq!(run.table6.opens_ct, 1);
    assert_eq!(run.table6.no_user_links, 905);
    assert_eq!(run.table6.browser_apps, 9);
    assert_eq!(run.table6.unclassifiable, 48);

    // The ten WebView-IAB apps were all instrumented.
    assert_eq!(run.iab.reports.len(), 10);

    // The set of apps the classifier found opening WebView IABs matches
    // the set the IAB study instruments.
    use whatcha_lookin_at::wla_dynamic::ClassificationOutcome;
    let classified_iabs: std::collections::BTreeSet<&str> = run
        .outcomes
        .iter()
        .filter(|(_, o)| matches!(o, ClassificationOutcome::OpensInWebViewIab))
        .map(|(p, _)| p.as_str())
        .collect();
    let studied: std::collections::BTreeSet<&str> =
        run.iab.reports.iter().map(|r| r.package.as_str()).collect();
    assert_eq!(classified_iabs, studied);

    // Table 8's qualitative grid: 6 of 10 inject both JS and a bridge.
    let both = run
        .iab
        .reports
        .iter()
        .filter(|r| r.injects_js && r.injects_bridge)
        .count();
    assert_eq!(both, 5, "Facebook, Instagram, Moj, Chingari, Kik");
    let none = run
        .iab
        .reports
        .iter()
        .filter(|r| !r.injects_js && !r.injects_bridge)
        .count();
    assert_eq!(none, 3, "Snapchat, Twitter, Reddit");
}

#[test]
fn custom_tab_restores_sessions_but_webview_does_not() {
    // Table 1's UX row, executed: the user is logged in to a site in
    // their browser. A CT sees the session; a WebView starts cold.
    let netlog = NetLog::new();
    let mut browser = Browser::new(netlog.clone());
    browser.cookies.login("shop.example.com");

    let tab = CustomTab::launch(
        &mut browser,
        "https://shop.example.com/checkout",
        "<p>cart</p>",
    );
    assert!(tab.session_restored(&browser));
    assert!(tab.secure_ui);

    let mut wv = WebViewInstance::new(
        9,
        "com.shop.app",
        FridaRecorder::new(),
        netlog,
        Logcat::new(),
    );
    wv.load(PageSource::Synthetic {
        url: "https://shop.example.com/checkout".into(),
        html: "<p>cart</p>".into(),
        extra_requests: vec![],
    });
    // The WebView has its own jar; the browser session is invisible.
    assert!(!wv.cookies.is_logged_in("shop.example.com"));
}

#[test]
fn webview_iab_beacons_travel_over_real_sockets() {
    // The measurement path is genuine: kill the server and the beacons
    // are lost, while local call recording still works.
    let profile = profile_for("com.facebook.katana").unwrap();
    let report = study_app(&profile, 3);
    // Server-side (Table 9) and client-side (hooks) agree that injection
    // happened.
    assert!(!report.web_api_usage.is_empty());
    assert!(
        report.hooked_calls.len() >= 8,
        "{}",
        report.hooked_calls.len()
    );
}

#[test]
fn redirectors_carry_the_requested_url() {
    for (pkg, host) in [
        ("com.facebook.katana", "lm.facebook.com"),
        ("com.instagram.android", "l.instagram.com"),
        ("com.twitter.android", "t.co"),
    ] {
        let profile = profile_for(pkg).unwrap();
        let report = study_app(&profile, 4);
        let red = report.redirector.expect("redirector present");
        assert!(red.contains(host), "{red}");
        assert!(red.contains("u="), "{red}");
        assert!(red.contains("h="), "tracking id missing: {red}");
    }
}

#[test]
fn x_requested_with_header_identifies_the_app() {
    // §5: "Every request that comes from a WebView has a X-Requested-With
    // header field with the app's APK name as its value" — our measurement
    // server records the visitor from that header/field.
    let profile = profile_for("kik.android").unwrap();
    let report = study_app(&profile, 5);
    assert!(!report.web_api_usage.is_empty());
    // The study attributed the beacons to Kik's package (checked inside
    // study_app via the DomSession visitor).
    assert_eq!(report.package, "kik.android");
}
