//! The readiness-loop server is pinned byte-identical to the blocking
//! thread-per-connection oracle (`wla_net::server::oracle`).
//!
//! Both servers share one response serialization (`Response::write_into`)
//! and one error classification (`server::error_response`), so for any
//! request byte stream the per-connection response byte stream must match
//! exactly — across the beacon, netlog, and `/analyze` routes, for serial
//! keep-alive exchanges, pipelined bursts, fragmented (trickled) writes,
//! and malformed requests. Each server gets its own freshly-built router
//! (own `BeaconStore`/`NetLog`) so stateful routes see identical update
//! sequences.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use wla_core::service_router;
use wla_corpus::generator::{CorpusConfig, Generator};
use wla_net::beacon::encode_beacon;
use wla_net::server::oracle;
use wla_net::{Handler, Request, Server, ServerConfig};
use wla_sdk_index::SdkIndex;

/// A fresh service router over the paper catalog. Every call builds its
/// own beacon store and netlog so the two servers under comparison track
/// state independently from identical inputs.
fn make_handler() -> Handler {
    let catalog = Arc::new(SdkIndex::paper());
    let page = Arc::new("<html><body>controlled page</body></html>".to_owned());
    service_router(
        catalog,
        page,
        wla_net::BeaconStore::default(),
        wla_net::NetLog::new(),
    )
    .into_handler()
}

/// Write `raw` to the server in `chunk`-byte fragments (1 ms apart when
/// fragmenting), half-close, and read the complete response stream.
fn exchange(addr: SocketAddr, raw: &[u8], chunk: usize) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let fragmented = chunk < raw.len();
    for part in raw.chunks(chunk.max(1)) {
        stream.write_all(part).unwrap();
        if fragmented {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    stream.shutdown(Shutdown::Write).unwrap();
    let mut out = Vec::new();
    stream.read_to_end(&mut out).unwrap();
    out
}

/// Assert both servers answer `raw` with byte-identical streams, whole
/// and trickled; returns the stream for content sanity checks.
fn assert_equivalent(raw: &[u8]) -> Vec<u8> {
    let mut oracle_server = oracle::Server::start_persistent(make_handler()).unwrap();
    let nb_server = Server::start(make_handler()).unwrap();

    let from_oracle = exchange(oracle_server.addr(), raw, raw.len());
    let from_nb = exchange(nb_server.addr(), raw, raw.len());
    assert_eq!(
        from_oracle,
        from_nb,
        "whole-write streams diverged:\n--- oracle ---\n{}\n--- nonblocking ---\n{}",
        String::from_utf8_lossy(&from_oracle),
        String::from_utf8_lossy(&from_nb)
    );

    // The same bytes trickled in small fragments must parse — and answer —
    // identically on both sides.
    let trickled_oracle = exchange(oracle_server.addr(), raw, 7);
    let trickled_nb = exchange(nb_server.addr(), raw, 7);
    assert_eq!(trickled_oracle, from_oracle, "oracle is fragment-sensitive");
    assert_eq!(trickled_nb, from_nb, "nonblocking is fragment-sensitive");

    oracle_server.shutdown();
    from_oracle
}

/// Keep-alive framing for every request but the last, which closes.
fn stream_of(requests: &[Request]) -> Vec<u8> {
    let mut raw = Vec::new();
    for (i, request) in requests.iter().enumerate() {
        request
            .write_into(&mut raw, i + 1 == requests.len())
            .unwrap();
    }
    raw
}

#[test]
fn beacon_and_page_streams_match() {
    let beacon = encode_beacon("Document", "write", None, "com.equiv.app");
    let stream = stream_of(&[
        Request::get("/page"),
        Request::post("/beacon", beacon.into_bytes()),
        Request::get("/page"),
    ]);
    let bytes = assert_equivalent(&stream);
    let text = String::from_utf8_lossy(&bytes);
    assert_eq!(text.matches("HTTP/1.1").count(), 3, "{text}");
    assert!(text.contains("controlled page"), "{text}");
    assert!(text.contains("204 No Content"), "{text}");
}

#[test]
fn netlog_streams_match() {
    let stream = stream_of(&[
        Request::post(
            "/netlog",
            &b"source=3&url=https%3A%2F%2Fads.example%2Fpx&phase=sent"[..],
        ),
        Request::post(
            "/netlog",
            &b"source=3&url=https%3A%2F%2Fcdn.example%2Fa.js"[..],
        ),
        Request::get("/netlog/hosts?source=3"),
    ]);
    let bytes = assert_equivalent(&stream);
    let text = String::from_utf8_lossy(&bytes);
    assert!(text.contains("ads.example"), "{text}");
    assert!(text.contains("cdn.example"), "{text}");
}

#[test]
fn analyze_streams_match() {
    // One decodable app and one corrupted container, pipelined: the 200
    // JSON document and the 422 taxonomy body must both be identical.
    let catalog = SdkIndex::paper();
    let config = CorpusConfig {
        scale: 2_000,
        seed: 7,
        corrupt_fraction: 0.0,
        ..CorpusConfig::default()
    };
    let app = Generator::new(&catalog, config)
        .generate()
        .into_iter()
        .find(|a| wla_static::analyze::analyze_app(a.spec.meta.clone(), &a.bytes).is_ok())
        .expect("corpus contains a decodable app");
    let stream = stream_of(&[
        Request::post("/analyze?package=com.equiv.app", app.bytes),
        Request::post("/analyze", &b"definitely not an sdex container"[..]),
    ]);
    let bytes = assert_equivalent(&stream);
    let text = String::from_utf8_lossy(&bytes);
    assert!(text.contains("200 OK"), "{text}");
    assert!(text.contains("\"uses_webview\":"), "{text}");
    assert!(text.contains("422 Unprocessable Entity"), "{text}");
    assert!(text.contains("\"kind\":\"bad-magic\""), "{text}");
}

#[test]
fn mixed_route_pipelined_burst_matches() {
    let beacon = encode_beacon("Navigator", "userAgent", None, "com.equiv.app");
    let stream = stream_of(&[
        Request::get("/healthz"),
        Request::post("/beacon", beacon.into_bytes()),
        Request::post(
            "/netlog",
            &b"source=1&url=https%3A%2F%2Ftracker.example%2Ft"[..],
        ),
        Request::get("/netlog/hosts?source=1"),
        Request::get("/nope"),
        Request::get("/healthz"),
    ]);
    let bytes = assert_equivalent(&stream);
    let text = String::from_utf8_lossy(&bytes);
    assert_eq!(text.matches("HTTP/1.1").count(), 6, "{text}");
    assert!(text.contains("404 Not Found"), "{text}");
    assert!(text.contains("tracker.example"), "{text}");
}

#[test]
fn malformed_and_method_errors_match() {
    // A bad request line closes the connection identically on both sides.
    let bytes = assert_equivalent(b"BOGUS /x HTTP/1.1\r\n\r\n");
    let text = String::from_utf8_lossy(&bytes);
    assert!(text.contains("400 Bad Request"), "{text}");
    assert!(text.contains("connection: close"), "{text}");

    // Wrong method on a known route answers 405 through the router on
    // both servers (no close: the connection itself is healthy).
    let stream = stream_of(&[Request::get("/analyze"), Request::get("/healthz")]);
    let bytes = assert_equivalent(&stream);
    let text = String::from_utf8_lossy(&bytes);
    assert!(text.contains("405 Method Not Allowed"), "{text}");
    assert!(text.contains("allow: POST"), "{text}");
}

#[test]
fn half_open_request_closes_silently_on_both() {
    // EOF mid-request: no response bytes at all, from either server.
    let bytes = assert_equivalent(b"GET /healthz HTTP/1.1\r\ncontent-le");
    assert!(bytes.is_empty(), "{}", String::from_utf8_lossy(&bytes));
}

#[test]
fn oversized_body_matches_with_small_limits() {
    let limits = wla_net::Limits {
        max_body_bytes: 64,
        ..wla_net::Limits::default()
    };
    let mut oracle_server = oracle::Server::start_with(make_handler(), limits, true).unwrap();
    let nb_server = Server::start_with(
        make_handler(),
        ServerConfig {
            limits,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let raw = stream_of(&[Request::post("/analyze", vec![0u8; 65])]);
    let from_oracle = exchange(oracle_server.addr(), &raw, raw.len());
    let from_nb = exchange(nb_server.addr(), &raw, raw.len());
    assert_eq!(from_oracle, from_nb);
    let text = String::from_utf8_lossy(&from_nb);
    assert!(text.contains("413 Payload Too Large"), "{text}");
    oracle_server.shutdown();
}
