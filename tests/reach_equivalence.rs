//! Equivalence of the CSR + bitset call-graph path against the hash-based
//! oracle (`wla_callgraph::oracle`), in the style of the interned-IR
//! oracle suite: randomized inputs, bit-identical outputs.
//!
//! Three layers of property:
//! 1. on randomized dexes (deep hierarchies with overrides at multiple
//!    depths, interface dispatch, unresolved framework refs), the CSR
//!    graph and the hash graph agree on definitions, sites, reachable
//!    sets, and whole `WebCallRecord` streams;
//! 2. targeted deep-override chains pin nearest-definition-wins vtable
//!    binding against the oracle's superclass walk;
//! 3. the full pipeline produces identical results regardless of worker
//!    count and batch size — which also proves the per-worker
//!    `ReachScratch` leaks no visited state between apps.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use whatcha_lookin_at::wla_apk::sdex::{
    ClassFlags, Dex, DexBuilder, Instruction, InvokeKind, MethodDef, MethodId, Reg,
};
use whatcha_lookin_at::wla_callgraph::oracle::{
    reachable_methods_oracle, record_web_calls_oracle, HashCallGraph,
};
use whatcha_lookin_at::wla_callgraph::reach::{
    reachable_methods, record_web_calls_with, ReachScratch,
};
use whatcha_lookin_at::wla_callgraph::{entry_points, CallGraph};
use whatcha_lookin_at::wla_corpus::{CorpusConfig, Generator};
use whatcha_lookin_at::wla_intern::{LocalInterner, Symbol};
use whatcha_lookin_at::wla_manifest::{Component, ComponentKind, Manifest};
use whatcha_lookin_at::wla_sdk_index::{LabelCache, SdkIndex};
use whatcha_lookin_at::wla_static::{run_pipeline, CorpusInput, PipelineConfig};

const NAMES: [&str; 6] = ["handle", "run", "go", "onCreate", "process", "loadUrl"];
const DESCRIPTORS: [&str; 2] = ["()V", "(Ljava/lang/String;)V"];
const KINDS: [InvokeKind; 5] = [
    InvokeKind::Virtual,
    InvokeKind::Static,
    InvokeKind::Direct,
    InvokeKind::Interface,
    InvokeKind::Super,
];

/// A randomized dex: a class forest (chains rooted in nothing or in
/// framework types), interface-flagged classes, colliding method names at
/// several depths, invoke sites of every kind against both defined and
/// framework receivers, and const-strings sprinkled in.
fn random_dex(rng: &mut StdRng) -> (Dex, Manifest) {
    let mut b = DexBuilder::new();
    let n_classes = rng.gen_range(3..12usize);
    let class_names: Vec<String> = (0..n_classes).map(|i| format!("com/r/C{i}")).collect();

    // Callee reference pool: refs against every class (defined or not at
    // the referenced signature) plus framework receivers.
    let mut ref_pool: Vec<MethodId> = Vec::new();
    for class in &class_names {
        for _ in 0..2 {
            let name = NAMES[rng.gen_range(0..NAMES.len())];
            let desc = DESCRIPTORS[rng.gen_range(0..DESCRIPTORS.len())];
            ref_pool.push(b.intern_method(class, name, desc));
        }
    }
    ref_pool.push(b.intern_method("android/webkit/WebView", "loadUrl", "(Ljava/lang/String;)V"));
    ref_pool.push(b.intern_method(
        "androidx/browser/customtabs/CustomTabsIntent",
        "launchUrl",
        "(Landroid/content/Context;Landroid/net/Uri;)V",
    ));
    let strings: Vec<u32> = (0..4)
        .map(|i| b.intern_string(&format!("https://r{i}.example")))
        .collect();

    for (i, class) in class_names.iter().enumerate() {
        // Chain to an earlier class (acyclic by construction), a framework
        // type, or nothing.
        let superclass = match rng.gen_range(0..4u8) {
            0 if i > 0 => Some(class_names[rng.gen_range(0..i)].clone()),
            1 => Some("android/app/Activity".to_owned()),
            _ => None,
        };
        let n_methods = rng.gen_range(1..4usize);
        let mut defined: HashSet<(usize, usize)> = HashSet::new();
        let mut methods = Vec::new();
        for _ in 0..n_methods {
            let name_idx = rng.gen_range(0..NAMES.len());
            let desc_idx = rng.gen_range(0..DESCRIPTORS.len());
            if !defined.insert((name_idx, desc_idx)) {
                continue;
            }
            let mut code = Vec::new();
            for _ in 0..rng.gen_range(0..6usize) {
                match rng.gen_range(0..5u8) {
                    0 | 1 => code.push(Instruction::Invoke {
                        kind: KINDS[rng.gen_range(0..KINDS.len())],
                        method: ref_pool[rng.gen_range(0..ref_pool.len())],
                        args: if rng.gen_bool(0.5) {
                            vec![Reg(rng.gen_range(0..4u16))]
                        } else {
                            vec![]
                        },
                    }),
                    2 => code.push(Instruction::ConstString {
                        dst: Reg(rng.gen_range(0..4u16)),
                        string: strings[rng.gen_range(0..strings.len())],
                    }),
                    3 => code.push(Instruction::Nop),
                    _ => code.push(Instruction::Goto { offset: 1 }),
                }
            }
            code.push(Instruction::ReturnVoid);
            methods.push(MethodDef::new(
                b.intern_method(class, NAMES[name_idx], DESCRIPTORS[desc_idx]),
                rng.gen_bool(0.8),
                rng.gen_bool(0.3),
                code,
            ));
        }
        b.define_class(
            class,
            superclass.as_deref(),
            ClassFlags {
                public: true,
                interface: rng.gen_bool(0.15),
                abstract_: false,
            },
            methods,
        )
        .unwrap();
    }

    let mut manifest = Manifest::new("com.r");
    for class in &class_names {
        if rng.gen_bool(0.3) {
            manifest
                .components
                .push(Component::simple(ComponentKind::Activity, class));
        }
    }
    (b.build(), manifest)
}

/// All method-table ids (defined and framework refs).
fn all_method_ids(dex: &Dex) -> Vec<MethodId> {
    (0..dex.method_count() as u32).map(MethodId).collect()
}

/// Record via both paths with fresh, identically seeded lexicons so the
/// `WebCallRecord`s are symbol-for-symbol comparable.
fn record_both_paths(
    dex: &Dex,
    roots: &[MethodId],
    sub_names: &[&str],
) -> (
    whatcha_lookin_at::wla_callgraph::WebCallRecord,
    whatcha_lookin_at::wla_callgraph::WebCallRecord,
) {
    let catalog = SdkIndex::paper();
    let csr = CallGraph::build(dex);
    let oracle = HashCallGraph::build(dex);

    let mut lex_a = LocalInterner::new();
    let subs_a: HashSet<Symbol> = sub_names.iter().map(|n| lex_a.intern(n)).collect();
    let mut labels_a = LabelCache::new();
    let mut scratch = ReachScratch::new();
    let rec_csr = record_web_calls_with(
        &csr,
        roots,
        &subs_a,
        &catalog,
        &mut lex_a,
        &mut labels_a,
        &mut scratch,
    );

    let mut lex_b = LocalInterner::new();
    let subs_b: HashSet<Symbol> = sub_names.iter().map(|n| lex_b.intern(n)).collect();
    let mut labels_b = LabelCache::new();
    let rec_oracle =
        record_web_calls_oracle(&oracle, roots, &subs_b, &catalog, &mut lex_b, &mut labels_b);
    (rec_csr, rec_oracle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On randomized dexes, the CSR graph and the hash oracle agree on
    /// structure, reachability, and the recorded `WebCall` stream.
    #[test]
    fn csr_matches_oracle_on_random_dexes(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (dex, manifest) = random_dex(&mut rng);
        let csr = CallGraph::build(&dex);
        let oracle = HashCallGraph::build(&dex);

        prop_assert_eq!(csr.defined_count(), oracle.defined_count());
        prop_assert_eq!(csr.sites(), oracle.sites());
        // CSR dedups; the oracle keeps duplicates — so ≤, and the per-node
        // target *sets* are identical.
        prop_assert!(csr.edge_count() <= oracle.edge_count());
        for m in all_method_ids(&dex) {
            prop_assert_eq!(csr.defining_class(m), oracle.defining_class(m), "def {:?}", m);
            let a: HashSet<MethodId> = csr.callees(m).collect();
            let o: HashSet<MethodId> = oracle.callees(m).iter().copied().collect();
            prop_assert_eq!(a, o, "callees of {:?}", m);
        }

        // Entry-point reachability.
        let roots = entry_points(&csr, &manifest);
        prop_assert_eq!(
            reachable_methods(&csr, &roots),
            reachable_methods_oracle(&oracle, &roots)
        );

        // Arbitrary root sets, including framework (undefined) refs.
        let ids = all_method_ids(&dex);
        let arbitrary: Vec<MethodId> = ids
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(0.25))
            .collect();
        prop_assert_eq!(
            reachable_methods(&csr, &arbitrary),
            reachable_methods_oracle(&oracle, &arbitrary)
        );

        // Whole record streams, symbol-for-symbol.
        let (rec_csr, rec_oracle) = record_both_paths(&dex, &roots, &["com/r/C1"]);
        prop_assert_eq!(rec_csr, rec_oracle);
    }

    /// Deep single-inheritance chains with the same method name re-defined
    /// at several depths: the vtable's nearest-definition-wins binding must
    /// match the oracle's explicit superclass walk, from every receiver
    /// depth and for every virtual-ish invoke kind.
    #[test]
    fn deep_override_chains_bind_to_nearest_definition(
        seed in 0u64..100_000,
        depth in 4usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = DexBuilder::new();
        let chain: Vec<String> = (0..depth).map(|i| format!("com/d/L{i}")).collect();

        // Callers live outside the chain and invoke `handle` against a
        // random depth with a random virtual-ish kind.
        let mut caller_code = Vec::new();
        for _ in 0..8 {
            let receiver = &chain[rng.gen_range(0..depth)];
            let kind = [InvokeKind::Virtual, InvokeKind::Interface, InvokeKind::Super]
                [rng.gen_range(0..3usize)];
            caller_code.push(Instruction::Invoke {
                kind,
                method: b.intern_method(receiver, "handle", "()V"),
                args: vec![],
            });
        }
        caller_code.push(Instruction::ReturnVoid);
        let caller = MethodDef::new(
            b.intern_method("com/d/Main", "go", "()V"),
            true,
            true,
            caller_code,
        );
        b.define_class("com/d/Main", None, ClassFlags::default(), vec![caller])
            .unwrap();

        // L0 is the root and always defines `handle`; deeper links
        // re-define it with probability 1/3 (overrides at random depths).
        for (i, class) in chain.iter().enumerate() {
            let defines = i == 0 || rng.gen_bool(1.0 / 3.0);
            let methods = if defines {
                vec![MethodDef::new(
                    b.intern_method(class, "handle", "()V"),
                    true,
                    false,
                    vec![Instruction::ReturnVoid],
                )]
            } else {
                vec![]
            };
            let superclass = (i > 0).then(|| chain[i - 1].clone());
            b.define_class(class, superclass.as_deref(), ClassFlags::default(), methods)
                .unwrap();
        }
        let dex = b.build();

        let csr = CallGraph::build(&dex);
        let oracle = HashCallGraph::build(&dex);
        let main = dex.class_by_name("com/d/Main").unwrap().methods[0].method;
        let a: HashSet<MethodId> = csr.callees(main).collect();
        let o: HashSet<MethodId> = oracle.callees(main).iter().copied().collect();
        prop_assert_eq!(&a, &o);
        // And every resolved target is the *nearest* definition: walking
        // up from the receiver, the first defining class is the binder.
        for m in &a {
            let def = csr.defining_class(*m).expect("resolved targets are defined");
            let receiver = dex.method_ref(*m);
            prop_assert!(
                receiver.class == def || dex.superclasses(receiver.class).any(|t| t == def)
            );
        }
        prop_assert_eq!(
            reachable_methods(&csr, &[main]),
            reachable_methods_oracle(&oracle, &[main])
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Pipeline results are bit-identical across worker counts and batch
    /// sizes. Each worker reuses one `ReachScratch` across its whole shard,
    /// so this also proves traversal state never leaks between apps.
    #[test]
    fn records_independent_of_worker_count_and_batch(
        seed in 0u64..10_000,
        workers in 1usize..8,
        batch in 0usize..40,
    ) {
        let catalog = SdkIndex::paper();
        let cfg = CorpusConfig {
            scale: 1_200,
            seed,
            corrupt_fraction: 0.1,
            ..CorpusConfig::default()
        };
        let inputs: Vec<CorpusInput> = Generator::new(&catalog, cfg)
            .generate()
            .into_iter()
            .map(|g| CorpusInput { meta: g.spec.meta.clone(), bytes: g.bytes })
            .collect();
        let base = run_pipeline(
            &inputs,
            &catalog,
            PipelineConfig { workers: 1, batch: 1, ..PipelineConfig::default() },
        );
        let out = run_pipeline(
            &inputs,
            &catalog,
            PipelineConfig { workers, batch, ..PipelineConfig::default() },
        );
        prop_assert_eq!(out.results.len(), base.results.len());
        for (a, b) in out.results.iter().zip(&base.results) {
            match (a, b) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                (Err(x), Err(y)) => prop_assert_eq!(x, y),
                other => prop_assert!(false, "ok/err mismatch: {:?}", other),
            }
        }
        // Scratch lifecycle: one traversal per graph, every traversal
        // either reused or grew its worker's bitset.
        let s = &out.stats.callgraph;
        prop_assert_eq!(s.bitset_reuses + s.bitset_grows, s.graphs);
        prop_assert!(s.graphs >= out.stats.analyzed as u64);
    }
}
