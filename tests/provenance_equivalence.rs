//! Provenance-resolver equivalence and dominance.
//!
//! The constant-propagation pass (`wla-static::dataflow`) replaces the
//! paper's linear pending-string heuristic
//! (`wla-callgraph::provenance_oracle`). Two properties pin the swap:
//!
//! 1. **Equivalence on adjacency-shaped code** — on branch-free programs
//!    where every `const-string` feeds the next invoke through a fresh
//!    register (the shape the heuristic was designed for), both resolvers
//!    produce identical verdicts, instruction for instruction.
//! 2. **Strict dominance on register-shuffled corpora** — the corpus
//!    lowering interleaves decoy constants, move chains, and branch
//!    diamonds around every URL call; there the dataflow pass resolves
//!    every site the heuristic loses.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use whatcha_lookin_at::wla_apk::sdex::{Instruction, InvokeKind, MethodId, Reg};
use whatcha_lookin_at::wla_callgraph::provenance_oracle::pending_strings;
use whatcha_lookin_at::wla_callgraph::{Provenance, UrlOrigin};
use whatcha_lookin_at::wla_corpus::{CorpusConfig, Generator};
use whatcha_lookin_at::wla_sdk_index::SdkIndex;
use whatcha_lookin_at::wla_static::dataflow::method_provenance;
use whatcha_lookin_at::wla_static::{analyze_app_timed_with, AnalysisCtx, DataflowCounters};

/// Build a branch-free, adjacency-shaped method body: a run of call
/// units, each either "armed" (`const-string rN; nop*; invoke(rN)`) or
/// "bare" (`invoke(rM)` on a register nothing ever writes). Registers
/// are fresh per unit so neither resolver can be confused by reuse.
fn adjacency_program(seed: u64, units: usize) -> (Vec<Instruction>, u32) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut code = Vec::new();
    let mut next_reg = 0u16;
    for unit in 0..units {
        let reg = Reg(next_reg);
        next_reg += 1;
        let armed = rng.gen_bool(0.6);
        if armed {
            code.push(Instruction::ConstString {
                dst: reg,
                string: unit as u32,
            });
            for _ in 0..rng.gen_range(0..3usize) {
                code.push(Instruction::Nop);
            }
        }
        code.push(Instruction::Invoke {
            kind: InvokeKind::Virtual,
            method: MethodId(unit as u32),
            args: vec![reg],
        });
        if rng.gen_bool(0.4) {
            code.push(Instruction::Nop);
        }
    }
    code.push(Instruction::ReturnVoid);
    (code, u32::from(next_reg.max(1)))
}

proptest! {
    /// On the heuristic's home turf the dataflow pass agrees with it
    /// verdict-for-verdict: same invokes, same constants, same unknowns.
    #[test]
    fn dataflow_matches_pending_string_oracle_on_adjacent_code(
        seed in 0u64..512,
        units in 1usize..12,
    ) {
        let (code, registers) = adjacency_program(seed, units);
        let oracle = pending_strings(&code);
        let mut counters = DataflowCounters::default();
        let flow = method_provenance(&code, registers, &mut counters);
        prop_assert_eq!(&flow, &oracle, "seed {} units {}", seed, units);
        prop_assert_eq!(flow.len(), units);
        // Branch-free bodies must take the cheap linear path.
        prop_assert_eq!(counters.linear_methods, counters.methods);
        // And at least verify the armed units really resolved.
        for p in &flow {
            prop_assert!(matches!(p, Provenance::Const(_) | Provenance::Unknown));
        }
    }
}

/// On the register-shuffled corpus the relationship is strict dominance:
/// the pass resolves every URL-bearing site, the heuristic none of them.
#[test]
fn dataflow_strictly_dominates_oracle_on_shuffled_corpus() {
    let catalog = SdkIndex::paper();
    let cfg = CorpusConfig {
        scale: 60,
        seed: 90_210,
        ..CorpusConfig::default()
    };
    let corpus = Generator::new(&catalog, cfg).generate();

    let mut total = 0u64;
    let mut flow_resolved = 0u64;
    let mut oracle_resolved = 0u64;
    for g in corpus.iter().filter(|g| !g.corrupted) {
        for ablate in [false, true] {
            let mut ctx = AnalysisCtx::new(&catalog);
            ctx.use_dataflow = !ablate;
            let analysis = analyze_app_timed_with(g.spec.meta.clone(), &g.bytes, &mut ctx)
                .0
                .expect("clean container analyzes");
            let origins = analysis
                .webview_sites
                .iter()
                .filter(|s| s.is_load_method)
                .map(|s| s.origin)
                .chain(
                    analysis
                        .ct_sites
                        .iter()
                        .filter(|s| s.is_launch)
                        .map(|s| s.origin),
                );
            for origin in origins {
                let hit = u64::from(origin == UrlOrigin::Resolved);
                if ablate {
                    oracle_resolved += hit;
                } else {
                    total += 1;
                    flow_resolved += hit;
                }
            }
        }
    }

    assert!(
        total > 50,
        "corpus too small to be meaningful: {total} sites"
    );
    // ISSUE acceptance: >= 95% resolved under dataflow. (In practice the
    // generated corpus resolves fully; the margin guards future lowering
    // recipes that may add genuinely dynamic URLs.)
    assert!(
        flow_resolved * 100 >= total * 95,
        "dataflow resolved {flow_resolved}/{total}"
    );
    // The shuffle recipe defeats the pending-string heuristic entirely.
    assert_eq!(
        oracle_resolved, 0,
        "heuristic should resolve nothing on shuffled corpora"
    );
}
