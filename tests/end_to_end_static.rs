//! Cross-crate integration: the full §3.1 static pipeline from corpus
//! bytes to aggregated results, checked against planted ground truth.

use whatcha_lookin_at::wla_corpus::{CorpusConfig, Generator};
use whatcha_lookin_at::wla_sdk_index::{SdkCategory, SdkIndex};
use whatcha_lookin_at::wla_static::{
    aggregate, analyze_app, run_pipeline, CorpusInput, PipelineConfig,
};
use whatcha_lookin_at::Study;

#[test]
fn pipeline_recovers_planted_ground_truth_exactly() {
    let catalog = SdkIndex::paper();
    let cfg = CorpusConfig {
        scale: 500,
        seed: 31337,
        ..CorpusConfig::default()
    };
    let corpus = Generator::new(&catalog, cfg).generate();

    for g in &corpus {
        let result = analyze_app(g.spec.meta.clone(), &g.bytes);
        if g.corrupted {
            assert!(
                result.is_err(),
                "corrupted container decoded: {}",
                g.spec.meta.package
            );
            continue;
        }
        let analysis = result.expect("clean container analyzes");
        assert_eq!(
            analysis.uses_webview(),
            g.spec.uses_webview(&catalog),
            "webview verdict for {}",
            g.spec.meta.package
        );
        assert_eq!(
            analysis.uses_custom_tabs(),
            g.spec.uses_custom_tabs(),
            "ct verdict for {}",
            g.spec.meta.package
        );
        let truth: std::collections::HashSet<&str> =
            g.spec.method_census(&catalog).names().collect();
        assert_eq!(analysis.methods_used(), truth, "{}", g.spec.meta.package);
    }
}

#[test]
fn study_shares_match_paper_at_scale() {
    let study = Study::new(100, 424_242);
    let run = study.run_static();
    let n = run.results.analyzed as f64;
    let wv = run.results.webview_apps as f64 / n;
    let ct = run.results.ct_apps as f64 / n;
    let both = run.results.both_apps as f64 / n;
    assert!((wv - 0.557).abs() < 0.05, "webview share {wv}");
    assert!((ct - 0.199).abs() < 0.05, "ct share {ct}");
    assert!((both - 0.150).abs() < 0.05, "both share {both}");
    // Ordering invariants that define the paper's story.
    assert!(run.results.webview_apps > run.results.ct_apps);
    assert!(run.results.ct_apps > run.results.both_apps);
    // loadUrl is the dominant method.
    assert!(run.results.method_census[0].apps >= run.results.method_census[1].apps);
}

#[test]
fn pipeline_is_deterministic_across_worker_counts() {
    let catalog = SdkIndex::paper();
    let cfg = CorpusConfig {
        scale: 1_000,
        seed: 5,
        ..CorpusConfig::default()
    };
    let inputs: Vec<CorpusInput> = Generator::new(&catalog, cfg)
        .generate()
        .into_iter()
        .map(|g| CorpusInput {
            meta: g.spec.meta.clone(),
            bytes: g.bytes,
        })
        .collect();
    let a = aggregate(
        &run_pipeline(
            &inputs,
            &catalog,
            PipelineConfig {
                workers: 1,
                ..PipelineConfig::default()
            },
        ),
        &catalog,
        1,
    );
    let b = aggregate(
        &run_pipeline(
            &inputs,
            &catalog,
            PipelineConfig {
                workers: 7,
                ..PipelineConfig::default()
            },
        ),
        &catalog,
        1,
    );
    assert_eq!(a, b);
}

#[test]
fn advertising_dominates_webview_social_dominates_ct() {
    let study = Study::new(100, 90_210);
    let run = study.run_static();
    let by_cat = |cat: SdkCategory, ct: bool| -> usize {
        run.results
            .sdk_usage
            .iter()
            .filter(|r| r.category == cat)
            .map(|r| if ct { r.ct_apps } else { r.wv_apps })
            .sum()
    };
    // WebView panel: advertising beats every other category.
    let ads = by_cat(SdkCategory::Advertising, false);
    for cat in SdkCategory::ALL {
        if cat != SdkCategory::Advertising {
            assert!(
                ads >= by_cat(cat, false),
                "{cat:?} beats ads in WebView usage"
            );
        }
    }
    // CT panel: social beats every other category.
    let social = by_cat(SdkCategory::Social, true);
    for cat in SdkCategory::ALL {
        if cat != SdkCategory::Social {
            assert!(
                social >= by_cat(cat, true),
                "{cat:?} beats social in CT usage"
            );
        }
    }
}

#[test]
fn funnel_reproduces_table2_within_one_percent() {
    let study = Study::new(1_000, 8);
    let static_run = study.run_static();
    let funnel = study.run_funnel(&static_run);
    let close = |measured: u64, paper: u64, tol: f64| {
        (measured as f64 - paper as f64).abs() / paper as f64 <= tol
    };
    assert_eq!(funnel.total, 6_507_222);
    assert!(close(funnel.found, 2_454_488, 0.01), "{}", funnel.found);
    assert!(close(funnel.popular, 198_324, 0.02), "{}", funnel.popular);
    assert!(
        close(funnel.maintained, 146_800, 0.02),
        "{}",
        funnel.maintained
    );
}
