//! Equivalence pins for the trusted-corpus decode fast path.
//!
//! The decode presets (`All` / `ChecksumOnly` / `None`) skip progressively
//! more re-validation on the streaming read path. Skipping checks must
//! never change *what* a valid blob decodes to — only how fast — so these
//! tests pin, across both decoders: preset-identical structures on valid
//! generated blobs, wire compatibility across SDEX versions (v2 bodies
//! have no lookup-table section; v3 adds one), and bit-identical streamed
//! study results with the presets and the lookup-table knob toggled, at
//! several worker counts. Trusted presets are only exercised on corpora
//! with `corrupt_fraction: 0.0` — on anything else `All` stays mandatory,
//! which `tests/robustness.rs` pins separately.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use whatcha_lookin_at::wla_apk::sdex::{oracle, SDEX_MAGIC};
use whatcha_lookin_at::wla_apk::wire::{adler32, put_uvarint};
use whatcha_lookin_at::wla_apk::{Dex, Sapk, SectionTag, VerifyPreset};
use whatcha_lookin_at::wla_corpus::ecosystem::{Ecosystem, EcosystemParams};
use whatcha_lookin_at::wla_corpus::lowering::lower;
use whatcha_lookin_at::wla_corpus::playstore::{AppMeta, PlayCategory};
use whatcha_lookin_at::wla_corpus::{write_sharded_corpus, CorpusConfig, Generator};
use whatcha_lookin_at::wla_sdk_index::SdkIndex;
use whatcha_lookin_at::wla_static::{
    aggregate, run_pipeline_streamed, AnalysisCtx, PipelineConfig, StreamConfig,
};

const PRESETS: [VerifyPreset; 3] = [
    VerifyPreset::All,
    VerifyPreset::ChecksumOnly,
    VerifyPreset::None,
];

fn meta() -> AppMeta {
    AppMeta {
        package: "com.preset.app".into(),
        on_play_store: true,
        downloads: 2_000_000,
        category: PlayCategory::Tools,
        last_update_day: 850,
    }
}

/// The SDEX blobs of one generated app.
fn dex_blobs(seed: u64) -> Vec<Vec<u8>> {
    let catalog = SdkIndex::paper();
    let eco = Ecosystem::new(&catalog, EcosystemParams::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = eco.sample_app(&mut rng, meta());
    let bytes = lower(&spec, &catalog, &mut rng).encode();
    let apk = Sapk::decode(&bytes).expect("generated app decodes");
    apk.sections()
        .iter()
        .filter(|s| s.tag == SectionTag::Dex)
        .map(|s| s.data.to_vec())
        .collect()
}

/// Strip the v3 lookup-table section off an encoded blob and restamp it as
/// the given older `version` — byte-exact downgrade surgery, mirroring
/// what a pre-lut writer would have produced.
fn downgrade_blob(v3: &[u8], version: u16) -> Vec<u8> {
    let dex = Dex::decode(v3).expect("valid v3 blob");
    let slots = (dex.type_count() * 2).next_power_of_two();
    let mut count_varint = Vec::new();
    put_uvarint(&mut count_varint, slots as u64);
    let lut_section = 1 + count_varint.len() + slots * 4;
    let body = &v3[10..v3.len() - lut_section];
    let mut out = Vec::with_capacity(10 + body.len());
    out.extend_from_slice(&SDEX_MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&adler32(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On valid generated blobs every preset decodes the same structure,
    /// in both decoders, and the zero-copy decoder matches the owning
    /// oracle under each preset.
    #[test]
    fn presets_decode_valid_blobs_identically(seed in 0u64..16) {
        for (i, blob) in dex_blobs(seed).iter().enumerate() {
            let baseline = Dex::decode(blob).expect("valid blob under All");
            let oracle_baseline = oracle::decode(blob).expect("oracle under All");
            prop_assert!(baseline == oracle_baseline, "seed {seed} dex {i}");
            for preset in PRESETS {
                let fast = Dex::decode_bytes_with(blob.clone().into(), preset)
                    .unwrap_or_else(|e| panic!("seed {seed} dex {i} {preset:?}: {e}"));
                let slow = oracle::decode_with(blob, preset)
                    .unwrap_or_else(|e| panic!("seed {seed} dex {i} {preset:?} oracle: {e}"));
                prop_assert!(fast == baseline, "seed {seed} dex {i} {preset:?}: fast differs");
                prop_assert!(fast == slow, "seed {seed} dex {i} {preset:?}: decoders differ");
            }
        }
    }

    /// v2 wire compat: a v3 body minus its lookup-table section is exactly
    /// a v2 body, so stripping the section and restamping still decodes —
    /// to the same strings, types, and classes — under every preset, in
    /// both decoders; name lookups work through the lazy probe table; and
    /// re-encoding upgrades the blob to v3 with the lut-absent flag,
    /// round-tripping cleanly. (v1 additionally changed the *instruction*
    /// wire format, so it cannot be produced by byte surgery; the
    /// hand-assembled v1 blobs in `sdex.rs` pin that compat path.)
    #[test]
    fn older_wire_versions_decode_under_every_preset(seed in 0u64..12) {
        let version = 2u16;
        for (i, blob) in dex_blobs(seed).iter().enumerate() {
            let v3 = Dex::decode(blob).expect("valid v3 blob");
            let old = downgrade_blob(blob, version);
            for preset in PRESETS {
                let dex = Dex::decode_bytes_with(old.clone().into(), preset)
                    .unwrap_or_else(|e| panic!("seed {seed} dex {i} v{version} {preset:?}: {e}"));
                let slow = oracle::decode_with(&old, preset)
                    .unwrap_or_else(|e| panic!("seed {seed} dex {i} v{version} oracle: {e}"));
                prop_assert!(dex == slow, "seed {seed} dex {i} v{version} {preset:?}");
                prop_assert!(!dex.has_lookup_table(), "old versions carry no lut");
                // Same logical content as the v3 original.
                prop_assert_eq!(dex.classes().len(), v3.classes().len());
                for class in v3.classes() {
                    let name = v3.type_name(class.ty);
                    prop_assert!(dex.class_by_name(name).is_some(), "lookup of {}", name);
                }
                prop_assert!(dex.lookup_table_rebuilt(), "lazy probe table built");
                // Re-encode emits current-version wire with the lut-absent
                // flag; decoding that round-trips.
                let upgraded = dex.encode();
                let back = Dex::decode(&upgraded).expect("upgraded blob decodes");
                prop_assert!(!back.has_lookup_table());
                prop_assert!(back == dex, "upgrade round-trip");
            }
        }
    }
}

/// Full verification must stay the default at every layer — decoder,
/// worker context, and pipeline config. The corruption suites
/// (`tests/robustness.rs`, `tests/decode_equivalence.rs`) exercise their
/// decoders through these defaults, so this pin is what makes them cover
/// the shipping configuration; `ci.sh` runs it alongside those suites as
/// an explicit gate.
#[test]
fn full_verification_is_the_default_everywhere() {
    assert_eq!(VerifyPreset::default(), VerifyPreset::All);
    let config = PipelineConfig::default();
    assert_eq!(config.verify_preset, VerifyPreset::All);
    assert!(config.use_lut);
    let catalog = SdkIndex::paper();
    let ctx = AnalysisCtx::new(&catalog);
    assert_eq!(ctx.verify_preset, VerifyPreset::All);
    assert!(ctx.use_lut);
}

/// Streamed study results are bit-identical with the fast path fully on
/// (trusted preset + lookup tables) and fully off (full verify, luts
/// discarded, binary-search vtables), across worker counts — on a corpus
/// with no planted corruption, where the trusted preset is sound.
#[test]
fn streamed_results_identical_across_presets_and_lut() {
    let catalog = SdkIndex::paper();
    let cfg = CorpusConfig {
        scale: 4_000,
        seed: 77,
        corrupt_fraction: 0.0,
        ..CorpusConfig::default()
    };
    let apps = Generator::new(&catalog, cfg).generate();
    let dir = std::env::temp_dir().join(format!("wla-preset-equiv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    write_sharded_corpus(&dir, &apps, 4).unwrap();

    let run = |workers: usize, preset: VerifyPreset, use_lut: bool| {
        let config = StreamConfig {
            pipeline: PipelineConfig {
                workers,
                verify_preset: preset,
                use_lut,
                ..PipelineConfig::default()
            },
            resume: false, // a cached result would short-circuit the ablation
            ..StreamConfig::default()
        };
        run_pipeline_streamed(&dir, &catalog, config).unwrap()
    };

    let baseline = run(1, VerifyPreset::All, true);
    assert_eq!(baseline.broken_count(), 0, "corpus has no corruption");
    let baseline_agg = aggregate(&baseline, &catalog, 1);
    for workers in [1usize, 3, 8] {
        for (preset, use_lut) in [
            (VerifyPreset::All, false),
            (VerifyPreset::ChecksumOnly, true),
            (VerifyPreset::None, true),
            (VerifyPreset::None, false),
        ] {
            let out = run(workers, preset, use_lut);
            assert_eq!(out.results.len(), baseline.results.len());
            for (i, (a, b)) in out.results.iter().zip(&baseline.results).enumerate() {
                match (a, b) {
                    (Ok(x), Ok(y)) => {
                        assert_eq!(x, y, "app {i}, workers {workers}, {preset:?}/lut={use_lut}")
                    }
                    other => panic!("app {i}: outcome mismatch {other:?}"),
                }
            }
            assert_eq!(out.interner.len(), baseline.interner.len());
            assert_eq!(aggregate(&out, &catalog, 1), baseline_agg);
            // The decode counters reflect the configured preset.
            let d = &out.stats.decode;
            match preset {
                VerifyPreset::All => {
                    assert_eq!(d.checksum_only + d.trusted, 0);
                    assert!(d.full > 0);
                }
                VerifyPreset::ChecksumOnly => {
                    assert_eq!(d.full + d.trusted, 0);
                    assert!(d.checksum_only > 0);
                }
                VerifyPreset::None => {
                    assert_eq!(d.full + d.checksum_only, 0);
                    assert!(d.trusted > 0);
                }
            }
            if use_lut {
                assert_eq!(
                    d.lut_present,
                    d.total(),
                    "every generated dex carries a lut"
                );
                assert_eq!(d.lut_rebuilds, 0);
            } else {
                assert_eq!(d.lut_present, 0, "ablation discards stored luts");
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
