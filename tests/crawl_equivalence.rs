//! The crawl pipeline's determinism and fault-isolation contracts.
//!
//! * parallel == serial: `run_crawl_study_parallel` is bit-identical to
//!   the one-worker oracle at every worker count and over site subsets —
//!   records, figures, failure list, and visit counts;
//! * interned == string oracle: resolving the interned records and folding
//!   the interned figures reproduces exactly what the string-path
//!   `crawl_app`/`crawl_baseline`/`figure6` oracle computes;
//! * fault isolation: a poisoned site panics its visits, the run
//!   completes, and the failures land in the taxonomy.

use std::collections::BTreeSet;
use wla_crawler::driver::{crawl_app, crawl_baseline, figure6, run_visit_prepared};
use wla_crawler::sites::{top_100_sites, TopSite};
use wla_device::iab::all_profiles;
use wla_dynamic::crawl_study::{run_crawl_study, run_crawl_study_parallel};
use wla_dynamic::{run_crawl_pipeline_with, CrawlConfig, CrawlFailureKind, CrawlStudy};

const APPS: &[&str] = &["LinkedIn", "Kik", "Snapchat"];

fn subset(n: usize, step: usize) -> Vec<TopSite> {
    top_100_sites().into_iter().step_by(step).take(n).collect()
}

/// Structural bit-identity between two study outputs: every record,
/// figure, failure, and the visit counters. Symbol tables are compared
/// through the records they resolve.
fn assert_identical(a: &CrawlStudy, b: &CrawlStudy) {
    assert_eq!(a.baseline, b.baseline);
    assert_eq!(a.per_app, b.per_app);
    assert_eq!(a.figures, b.figures);
    assert_eq!(a.failures, b.failures);
    assert_eq!(a.stats.visits_total, b.stats.visits_total);
    assert_eq!(a.stats.visits_completed, b.stats.visits_completed);
    assert_eq!(a.stats.visits_panicked, b.stats.visits_panicked);
    assert_eq!(a.stats.failure_kinds, b.stats.failure_kinds);
    assert_eq!(a.stats.steps_executed, b.stats.steps_executed);
    assert_eq!(a.stats.requests_logged, b.stats.requests_logged);
    assert_eq!(a.symbols.len(), b.symbols.len());
    for (ra, rb) in a.baseline.iter().zip(&b.baseline) {
        assert_eq!(a.symbols.resolve(ra.site), b.symbols.resolve(rb.site));
        for (&ha, &hb) in ra.hosts.iter().zip(&rb.hosts) {
            assert_eq!(a.symbols.resolve(ha), b.symbols.resolve(hb));
        }
    }
}

#[test]
fn parallel_matches_serial_at_every_worker_count() {
    let sites = subset(12, 7);
    let serial = run_crawl_study_parallel(
        Some(sites.clone()),
        Some(APPS),
        CrawlConfig {
            workers: 1,
            batch: 0,
            oversubscribe: true,
        },
    );
    assert_eq!(serial.stats.visits_total, 4 * 12);
    for workers in 2..=8 {
        let parallel = run_crawl_study_parallel(
            Some(sites.clone()),
            Some(APPS),
            CrawlConfig {
                workers,
                batch: 0,
                oversubscribe: true,
            },
        );
        // Oversubscription is on, so the pool is exactly as requested —
        // real threads even on a single-core host.
        assert_eq!(parallel.stats.workers.len(), workers);
        assert_identical(&serial, &parallel);
    }
}

#[test]
fn batch_size_does_not_change_the_output() {
    let sites = subset(10, 3);
    let oracle = run_crawl_study(Some(sites.clone()), Some(&["Kik"]));
    for batch in [1, 3, 7, 32] {
        let run = run_crawl_study_parallel(
            Some(sites.clone()),
            Some(&["Kik"]),
            CrawlConfig {
                workers: 3,
                batch,
                oversubscribe: true,
            },
        );
        assert_eq!(run.stats.batch, batch);
        assert_identical(&oracle, &run);
    }
}

#[test]
fn site_subsets_preserve_equivalence() {
    for (n, step) in [(1, 1), (5, 19), (20, 5)] {
        let sites = subset(n, step);
        let serial = run_crawl_study(Some(sites.clone()), Some(&["LinkedIn"]));
        let parallel = run_crawl_study_parallel(
            Some(sites),
            Some(&["LinkedIn"]),
            CrawlConfig {
                workers: 4,
                batch: 0,
                oversubscribe: true,
            },
        );
        assert_identical(&serial, &parallel);
    }
}

#[test]
fn interned_study_matches_string_oracle() {
    let sites = subset(15, 6);
    let study = run_crawl_study(Some(sites.clone()), Some(APPS));
    let baseline = crawl_baseline(&sites);

    // Baseline host sets resolve to exactly the oracle's.
    assert_eq!(study.baseline.len(), baseline.len());
    for (interned, oracle) in study.baseline.iter().zip(&baseline) {
        assert_eq!(study.symbols.resolve(interned.site), oracle.site_host);
        let resolved: BTreeSet<&str> = interned
            .hosts
            .iter()
            .map(|&h| study.symbols.resolve(h))
            .collect();
        let expect: BTreeSet<&str> = oracle.hosts.iter().map(String::as_str).collect();
        assert_eq!(resolved, expect);
        // Kinds match a one-by-one reclassification.
        for (&h, &k) in interned.hosts.iter().zip(&interned.kinds) {
            assert_eq!(
                k,
                wla_crawler::classify_endpoint(study.symbols.resolve(h), &oracle.site_host)
            );
        }
    }

    // Per-app records and figures are bit-identical to the string path.
    for profile in all_profiles() {
        if !APPS.contains(&profile.app_name) {
            continue;
        }
        let records = crawl_app(&profile, &sites);
        let interned = &study.per_app[profile.app_name];
        assert_eq!(interned.len(), records.len());
        for (i, o) in interned.iter().zip(&records) {
            assert_eq!(study.symbols.resolve(i.app), o.app);
            let resolved: BTreeSet<&str> =
                i.hosts.iter().map(|&h| study.symbols.resolve(h)).collect();
            let expect: BTreeSet<&str> = o.hosts.iter().map(String::as_str).collect();
            assert_eq!(resolved, expect);
        }
        // f64-exact figure equality: both paths fold through figure6_row.
        assert_eq!(
            study.figures[profile.app_name],
            figure6(&records, &baseline)
        );
    }
}

/// Silence the default panic hook for the injected-panic tests so the
/// expected backtraces don't pollute test output.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains("injected"))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

#[test]
fn poisoned_site_is_isolated_and_counted() {
    quiet_injected_panics();
    let sites = subset(10, 3);
    let poisoned = sites[4].host.clone();
    for workers in [1, 4] {
        let run = run_crawl_pipeline_with(
            &sites,
            Some(&["Kik"]),
            CrawlConfig {
                workers,
                batch: 2,
                oversubscribe: true,
            },
            |site, page, profile, session| {
                if site.host == poisoned {
                    panic!("injected crawl fault for {}", site.host);
                }
                run_visit_prepared(site, page, profile, session)
            },
        );
        // Both rows (baseline + Kik) panicked on the poisoned site; every
        // other visit completed.
        assert_eq!(run.stats.visits_total, 20);
        assert_eq!(run.stats.visits_panicked, 2);
        assert_eq!(run.stats.visits_completed, 18);
        assert_eq!(
            run.stats
                .failure_kinds
                .get(CrawlFailureKind::VisitPanic.label()),
            Some(&2)
        );
        assert_eq!(run.failures.len(), 2);
        for failure in &run.failures {
            assert_eq!(failure.site_host, poisoned);
            assert_eq!(failure.kind, CrawlFailureKind::VisitPanic);
            assert!(failure.message.contains("injected"), "{failure:?}");
        }
        // The poisoned site is absent from records; the rest survived.
        assert_eq!(run.baseline.len(), 9);
        assert_eq!(run.per_app["Kik"].len(), 9);
        assert!(run
            .baseline
            .iter()
            .all(|r| run.symbols.resolve(r.site) != poisoned));
        // Figures still cover every category.
        assert_eq!(run.figures["Kik"].len(), 10);
    }
}

#[test]
fn poisoned_runs_stay_deterministic_across_worker_counts() {
    quiet_injected_panics();
    let sites = subset(8, 11);
    let poisoned = sites[2].host.clone();
    let run_with = |workers| {
        run_crawl_pipeline_with(
            &sites,
            Some(&["LinkedIn"]),
            CrawlConfig {
                workers,
                batch: 0,
                oversubscribe: true,
            },
            |site, page, profile, session| {
                if site.host == poisoned {
                    panic!("injected crawl fault");
                }
                run_visit_prepared(site, page, profile, session)
            },
        )
    };
    let serial = run_with(1);
    assert_eq!(serial.stats.visits_panicked, 2);
    for workers in [2, 5, 8] {
        assert_identical(&serial, &run_with(workers));
    }
}
