//! `POST /analyze` error taxonomy over real HTTP, pinned on both servers.
//!
//! The contract (DESIGN 6.8): a container that decodes but is broken is a
//! `422` whose JSON body carries the stable `ApkError::kind` label; a body
//! past the configured cap never reaches the handler (`413` from the
//! codec); a wrong method never reaches it either (`405` from the router,
//! with an `allow` header). Every case is exercised against the
//! readiness-loop server *and* the blocking oracle, and the status, body,
//! and headers must agree.

use std::sync::Arc;
use wla_core::analysis_routes;
use wla_net::server::oracle;
use wla_net::{fetch, Handler, Limits, Request, Response, Server, ServerConfig, Status};
use wla_sdk_index::SdkIndex;

fn analyze_handler() -> Handler {
    let catalog = Arc::new(SdkIndex::paper());
    analysis_routes(wla_net::Router::new(), catalog).into_handler()
}

/// Run `request` against both servers and assert the responses agree on
/// status, headers, and body; returns the (shared) response.
fn on_both(request: Request) -> Response {
    let mut oracle_server = oracle::Server::start(analyze_handler()).unwrap();
    let nb_server = Server::start(analyze_handler()).unwrap();
    let from_oracle = fetch(oracle_server.addr(), request.clone()).unwrap();
    let from_nb = fetch(nb_server.addr(), request).unwrap();
    assert_eq!(from_oracle.status, from_nb.status);
    assert_eq!(from_oracle.body, from_nb.body);
    assert_eq!(from_oracle.headers, from_nb.headers);
    oracle_server.shutdown();
    from_nb
}

#[test]
fn corrupted_sdex_is_422_with_error_kind() {
    let resp = on_both(Request::post("/analyze", &b"XXXX not a container"[..]));
    assert_eq!(resp.status, Status::UnprocessableEntity);
    assert_eq!(resp.header("content-type"), Some("application/json"));
    let body = String::from_utf8(resp.body.to_vec()).unwrap();
    assert!(body.contains("\"error\":{\"kind\":\"bad-magic\""), "{body}");
    assert!(body.contains("\"detail\":"), "{body}");
}

#[test]
fn truncated_sdex_reports_its_own_kind() {
    // A valid magic with nothing behind it exercises a different arm of
    // the taxonomy than bad-magic; the kind label must still be stable.
    let resp = on_both(Request::post("/analyze", &b"SAPK"[..]));
    assert_eq!(resp.status, Status::UnprocessableEntity);
    let body = String::from_utf8(resp.body.to_vec()).unwrap();
    assert!(body.contains("\"kind\":\"truncated\""), "{body}");
}

#[test]
fn oversized_body_is_413_from_the_codec() {
    let limits = Limits {
        max_body_bytes: 1024,
        ..Limits::default()
    };
    let mut oracle_server = oracle::Server::start_with(analyze_handler(), limits, false).unwrap();
    let nb_server = Server::start_with(
        analyze_handler(),
        ServerConfig {
            limits,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let request = Request::post("/analyze", vec![0u8; 4096]);
    let from_oracle = fetch(oracle_server.addr(), request.clone()).unwrap();
    let from_nb = fetch(nb_server.addr(), request).unwrap();
    assert_eq!(from_oracle.status, Status::PayloadTooLarge);
    assert_eq!(from_nb.status, Status::PayloadTooLarge);
    assert_eq!(from_oracle.body, from_nb.body);
    assert_eq!(from_oracle.headers, from_nb.headers);
    oracle_server.shutdown();
}

#[test]
fn wrong_method_is_405_with_allow_header() {
    let resp = on_both(Request::get("/analyze"));
    assert_eq!(resp.status, Status::MethodNotAllowed);
    assert_eq!(resp.header("allow"), Some("POST"));
}
