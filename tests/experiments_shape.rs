//! Shape regression: every experiment's paper-vs-measured comparison must
//! stay within its agreed band. These are the tests that would catch a
//! calibration regression anywhere in the stack.

use whatcha_lookin_at::{experiments, Study};

#[test]
fn static_experiments_hold_shape_at_scale_50() {
    let study = Study::new(50, 0xBEEF);
    let run = study.run_static();

    let t7 = experiments::table7(&study, &run);
    assert!(
        t7.comparison.match_fraction() >= 0.75,
        "table7: {}",
        t7.comparison.to_table().render()
    );

    let t4 = experiments::table4(&study, &run);
    assert!(
        t4.comparison.match_fraction() >= 0.7,
        "table4: {}",
        t4.comparison.to_table().render()
    );

    let f4 = experiments::fig4(&study, &run);
    assert!(
        f4.comparison.match_fraction() >= 0.6,
        "fig4: {}",
        f4.comparison.to_table().render()
    );

    let f3 = experiments::fig3(&study, &run);
    assert!(
        f3.comparison.match_fraction() >= 0.6,
        "fig3: {}",
        f3.comparison.to_table().render()
    );
}

#[test]
fn funnel_experiment_is_exact() {
    let study = Study::new(200, 0xF00D);
    let run = study.run_static();
    let funnel = study.run_funnel(&run);
    let t2 = experiments::table2(&study, &funnel);
    assert_eq!(
        t2.comparison.match_fraction(),
        1.0,
        "{}",
        t2.comparison.to_table().render()
    );
}

#[test]
fn dynamic_experiments_are_exact() {
    let study = Study::new(100, 0xD00D);
    let run = study.run_dynamic();
    for exp in [
        experiments::table6(&run),
        experiments::table8(&run),
        experiments::table9(&run),
    ] {
        assert_eq!(
            exp.comparison.match_fraction(),
            1.0,
            "{}: {}",
            exp.id,
            exp.comparison.to_table().render()
        );
    }
}

#[test]
fn crawl_and_loadtime_experiments_hold() {
    let study = Study::new(100, 0xCAFE);
    let crawl = study.run_crawl(Some(&["LinkedIn", "Kik"]));
    let f6 = experiments::fig6(&crawl);
    assert_eq!(
        f6.comparison.match_fraction(),
        1.0,
        "{}",
        f6.comparison.to_table().render()
    );
    let f7 = experiments::fig7();
    assert_eq!(f7.comparison.match_fraction(), 1.0);
}
