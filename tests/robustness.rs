//! Robustness properties spanning crates: the analyzer must never panic on
//! damaged or adversarial inputs, and decompile→parse must round-trip the
//! facts the study depends on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use whatcha_lookin_at::wla_apk::corrupt::{corrupt, CorruptionKind};
use whatcha_lookin_at::wla_apk::names::to_source_name;
use whatcha_lookin_at::wla_apk::Dex;
use whatcha_lookin_at::wla_corpus::ecosystem::{Ecosystem, EcosystemParams};
use whatcha_lookin_at::wla_corpus::lowering::lower;
use whatcha_lookin_at::wla_corpus::playstore::{AppMeta, PlayCategory};
use whatcha_lookin_at::wla_decompile::{lift_dex, parse_source};
use whatcha_lookin_at::wla_sdk_index::SdkIndex;
use whatcha_lookin_at::wla_static::analyze_app;

fn meta() -> AppMeta {
    AppMeta {
        package: "com.prop.app".into(),
        on_play_store: true,
        downloads: 1_000_000,
        category: PlayCategory::Casual,
        last_update_day: 800,
    }
}

fn app_bytes(seed: u64) -> Vec<u8> {
    let catalog = SdkIndex::paper();
    let eco = Ecosystem::new(&catalog, EcosystemParams::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = eco.sample_app(&mut rng, meta());
    lower(&spec, &catalog, &mut rng).encode().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte noise never panics the full analyzer.
    #[test]
    fn analyzer_never_panics_on_noise(raw in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = analyze_app(meta(), &raw);
    }

    /// Every corruption of a valid container is rejected, never mis-parsed.
    #[test]
    fn corrupted_containers_always_rejected(
        seed in 0u64..32,
        kind in prop_oneof![
            (8u8..250).prop_map(|keep_num| CorruptionKind::Truncate { keep_num }),
            any::<u8>().prop_map(|pos_num| CorruptionKind::BitFlip { pos_num }),
            Just(CorruptionKind::ClobberMagic),
            any::<u8>().prop_map(|site_num| CorruptionKind::ClobberRegister { site_num }),
            any::<u8>().prop_map(|slot_num| CorruptionKind::ClobberLookupTable { slot_num }),
        ],
    ) {
        let good = app_bytes(seed);
        prop_assert!(analyze_app(meta(), &good).is_ok());
        let bad = corrupt(&good, kind);
        prop_assert!(analyze_app(meta(), &bad).is_err(), "corruption {kind:?} accepted");
    }

    /// Decompile→parse round-trips class name, package, and superclass for
    /// every class of every generated app.
    #[test]
    fn decompile_parse_roundtrip(seed in 0u64..48) {
        let bytes = app_bytes(seed);
        let apk = whatcha_lookin_at::wla_apk::Sapk::decode(&bytes).unwrap();
        let dex = Dex::decode(apk.dex_bytes().unwrap()).unwrap();
        for file in lift_dex(&dex) {
            let parsed = parse_source(&file.source)
                .unwrap_or_else(|e| panic!("{}: {e}", file.binary_name));
            let expected = to_source_name(&file.binary_name);
            prop_assert_eq!(parsed.qualified_name(), expected.clone(), "{}", file.binary_name);
            // Superclass agreement (java/lang/Object prints as no extends).
            let class = dex.class_by_name(&file.binary_name).unwrap();
            let dex_super = class
                .superclass
                .map(|t| to_source_name(dex.type_name(t)))
                .filter(|s| s != "java.lang.Object");
            prop_assert_eq!(parsed.resolved_superclass(), dex_super);
        }
    }

    /// Re-encoding a decoded dex is byte-identical (canonical encoding).
    #[test]
    fn dex_encoding_is_canonical(seed in 0u64..32) {
        let bytes = app_bytes(seed);
        let apk = whatcha_lookin_at::wla_apk::Sapk::decode(&bytes).unwrap();
        let dex_bytes = apk.dex_bytes().unwrap();
        let dex = Dex::decode(dex_bytes).unwrap();
        prop_assert_eq!(&dex.encode()[..], &dex_bytes[..]);
    }
}

#[test]
fn html_parser_survives_the_corpus_of_site_pages() {
    use whatcha_lookin_at::wla_crawler::sites::{site_html, top_100_sites};
    use whatcha_lookin_at::wla_web::html::parse;
    for site in top_100_sites() {
        let doc = parse(&site_html(&site));
        assert!(doc.body().is_some(), "{}", site.host);
        assert!(
            !doc.get_elements_by_tag_name("p").is_empty(),
            "{}",
            site.host
        );
    }
}
