//! Integration coverage for the discussion-section extensions: website
//! defenses, Safe Browsing, bridges, OAuth, Partial CTs, fingerprinting,
//! privacy labels, the opt-out setting, and the Monkey contrast.

use whatcha_lookin_at::wla_corpus::ecosystem::top_thousand;
use whatcha_lookin_at::wla_device::browser::Browser;
use whatcha_lookin_at::wla_device::monkey::monkey_success_rate;
use whatcha_lookin_at::wla_device::oauth::{run_oauth_flow, AuthMechanism};
use whatcha_lookin_at::wla_dynamic::classify::{classify_top_apps, PROBE_URL};
use whatcha_lookin_at::wla_net::NetLog;
use whatcha_lookin_at::wla_static::{grade_distribution, privacy_label, ExposureGrade};
use whatcha_lookin_at::wla_web::fingerprint::{collect, DeviceProfile, Surface};
use whatcha_lookin_at::wla_web::website::Website;
use whatcha_lookin_at::Study;

#[test]
fn scripted_driver_beats_the_monkey() {
    // §3.2.3: the scripted per-app crawler reaches every accessible UGC
    // app (the classification finds all 38), while Monkey at the same kind
    // of effort budget reaches only a fraction.
    let apps = top_thousand(21);
    let (counts, _) = classify_top_apps(&apps);
    assert_eq!(counts.can_post_links, 38); // scripted: every accessible one
    let monkey = monkey_success_rate(&apps, 21, 1_000);
    assert!(monkey < 0.5, "monkey rate {monkey}");
    assert!(!PROBE_URL.is_empty());
}

#[test]
fn privacy_labels_cover_the_corpus_and_track_bridges() {
    let study = Study::new(500, 17);
    let run = study.run_static();
    let inputs: Vec<whatcha_lookin_at::wla_static::CorpusInput> = run
        .corpus
        .iter()
        .map(|g| whatcha_lookin_at::wla_static::CorpusInput {
            meta: g.spec.meta.clone(),
            bytes: g.bytes.clone(),
        })
        .collect();
    let out = whatcha_lookin_at::wla_static::run_pipeline(
        &inputs,
        &study.catalog,
        whatcha_lookin_at::wla_static::PipelineConfig::default(),
    );
    let labels: Vec<_> = out
        .analyzed()
        .map(|a| privacy_label(a, &study.catalog))
        .collect();
    let dist = grade_distribution(&labels);
    let total: usize = dist.iter().map(|(_, n)| *n).sum();
    assert_eq!(total, out.analyzed_count());
    // Cross-check against the pipeline's own bridge census.
    let high = labels
        .iter()
        .filter(|l| l.grade == ExposureGrade::High)
        .count();
    let bridge_apps = run
        .results
        .method_census
        .iter()
        .find(|m| m.method == "addJavascriptInterface")
        .unwrap()
        .apps;
    assert_eq!(high, bridge_apps);
}

#[test]
fn oauth_against_blocking_idp_mirrors_figure5() {
    let mut browser = Browser::new(NetLog::new());
    let fb = Website::facebook();
    let wv = run_oauth_flow(AuthMechanism::EmbeddedWebView, "com.app", &fb, &mut browser);
    let ct = run_oauth_flow(AuthMechanism::CustomTab, "com.app", &fb, &mut browser);
    assert!(wv.refused_by_idp && !ct.refused_by_idp);
    assert!(!wv.trusted_ui && ct.trusted_ui);
}

#[test]
fn fingerprints_link_users_across_apps_only_via_webviews() {
    let device = DeviceProfile::pixel3();
    let apps = ["com.facebook.katana", "kik.android", "com.pinterest"];
    // WebView fingerprints: all distinct (per-app linkable identity).
    let wv: Vec<u64> = apps
        .iter()
        .map(|a| collect(&device, Surface::WebView, a).digest())
        .collect();
    let mut unique = wv.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), apps.len());
    // CT fingerprints: one shared identity.
    let ct: Vec<u64> = apps
        .iter()
        .map(|a| collect(&device, Surface::Browser, a).digest())
        .collect();
    assert!(ct.windows(2).all(|w| w[0] == w[1]));
}
