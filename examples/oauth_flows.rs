//! OAuth flows per RFC 8252: the same authorization run through an
//! embedded WebView and through a Custom Tab, against an ordinary IDP and
//! against one that blocks embedded browsers (Facebook, Figure 5).
//!
//! ```sh
//! cargo run --release --example oauth_flows
//! ```

use whatcha_lookin_at::wla_device::browser::Browser;
use whatcha_lookin_at::wla_device::oauth::{run_oauth_flow, AuthMechanism};
use whatcha_lookin_at::wla_net::NetLog;
use whatcha_lookin_at::wla_web::website::{WebViewLoginPolicy, Website};

fn show(label: &str, out: &whatcha_lookin_at::wla_device::oauth::OAuthOutcome) {
    println!("{label}");
    println!("  authorized:            {}", out.authorized);
    println!("  session reused:        {}", out.session_reused);
    println!(
        "  credentials typed into app surface: {}",
        out.credentials_typed_in_app_surface
    );
    println!("  trusted browser UI:    {}", out.trusted_ui);
    println!("  refused by IDP:        {}\n", out.refused_by_idp);
}

fn main() {
    let idp = Website::new("login.idp.example", WebViewLoginPolicy::Allow);
    let mut browser = Browser::new(NetLog::new());
    browser.cookies.login("login.idp.example"); // user signed in yesterday

    show(
        "— Custom Tab flow (RFC 8252 best practice) —",
        &run_oauth_flow(AuthMechanism::CustomTab, "com.game.app", &idp, &mut browser),
    );
    show(
        "— Embedded WebView flow —",
        &run_oauth_flow(
            AuthMechanism::EmbeddedWebView,
            "com.game.app",
            &idp,
            &mut browser,
        ),
    );

    println!("— Against Facebook (blocks embedded browsers since 2021) —\n");
    let fb = Website::facebook();
    show(
        "  via WebView:",
        &run_oauth_flow(
            AuthMechanism::EmbeddedWebView,
            "com.game.app",
            &fb,
            &mut browser,
        ),
    );
    show(
        "  via Custom Tab:",
        &run_oauth_flow(AuthMechanism::CustomTab, "com.game.app", &fb, &mut browser),
    );
}
