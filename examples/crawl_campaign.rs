//! Crawl campaign: visit the 100 synthetic top sites through LinkedIn's
//! and Kik's IABs plus the System WebView Shell baseline, and print the
//! Figure 6 endpoint distributions.
//!
//! ```sh
//! cargo run --release --example crawl_campaign
//! ```

use whatcha_lookin_at::wla_report::{bar_chart, Series};
use whatcha_lookin_at::Study;

fn main() {
    let study = Study::new(100, 11);
    eprintln!("crawling 100 sites × (LinkedIn, Kik, baseline) …\n");
    let crawl = study.run_crawl(Some(&["LinkedIn", "Kik"]));

    for app in ["LinkedIn", "Kik"] {
        let rows = crawl.figure_for(app).expect("crawled");
        let mut total = Series::new(format!(
            "{app}: avg distinct IAB-specific endpoints per visit (baseline-subtracted)"
        ));
        for row in rows {
            total.point(row.category.label(), row.avg_endpoints);
        }
        println!("{}", bar_chart(&total, 40));

        // Per-kind breakdown for the richest category.
        if let Some(news) = rows.iter().find(|r| r.category.label() == "News") {
            println!("  on News sites, by endpoint kind:");
            for (kind, avg) in &news.by_kind {
                println!("    {:12} {avg:.1}", kind.label());
            }
            println!();
        }
    }

    println!("baseline sanity: the System WebView Shell contacted only site-owned hosts;");
    let symbols = &crawl.symbols;
    let baseline_foreign = crawl
        .baseline
        .iter()
        .flat_map(|r| {
            r.hosts
                .iter()
                .map(move |&h| (symbols.resolve(h), symbols.resolve(r.site)))
        })
        .filter(|(h, site)| !h.ends_with(site) && !h.contains("site-"))
        .filter(|(h, _)| !h.contains("cdn") && !h.contains("player") && !h.contains("tag-manager"))
        .count();
    println!(
        "  non-site hosts in baseline (excluding the sites' own third parties): {baseline_foreign}"
    );
}
