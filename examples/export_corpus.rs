//! Export a generated corpus to disk in the AndroZoo-slice layout
//! (`metadata.csv` + `apks/*.sapk`), then read it back and analyze it —
//! the workflow a downstream user has when feeding the corpus to their
//! own tooling.
//!
//! ```sh
//! cargo run --release --example export_corpus -- /tmp/wla-corpus 1000
//! ```

use whatcha_lookin_at::wla_corpus::{read_corpus, write_corpus, CorpusConfig, Generator};
use whatcha_lookin_at::wla_sdk_index::SdkIndex;
use whatcha_lookin_at::wla_static::{run_pipeline, CorpusInput, PipelineConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = std::path::PathBuf::from(args.next().unwrap_or_else(|| "/tmp/wla-corpus".to_owned()));
    let scale: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1_000);

    let catalog = SdkIndex::paper();
    let cfg = CorpusConfig {
        scale,
        seed: 99,
        ..CorpusConfig::default()
    };
    let apps = Generator::new(&catalog, cfg).generate();
    write_corpus(&dir, &apps).expect("write corpus");
    println!("wrote {} containers to {}", apps.len(), dir.display());

    // Round-trip: read the directory like a stranger would and analyze it.
    let disk = read_corpus(&dir).expect("read corpus");
    let inputs: Vec<CorpusInput> = disk
        .into_iter()
        .map(|d| CorpusInput {
            meta: d.meta,
            bytes: d.bytes,
        })
        .collect();
    let out = run_pipeline(&inputs, &catalog, PipelineConfig::default());
    println!(
        "re-analyzed from disk: {} ok, {} broken",
        out.analyzed_count(),
        out.broken_count()
    );
    let wv = out.analyzed().filter(|a| a.uses_webview()).count();
    println!(
        "WebView share from the on-disk corpus: {:.1}%",
        wv as f64 / out.analyzed_count() as f64 * 100.0
    );
}
