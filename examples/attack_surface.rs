//! Attack-surface demo: Table 1's security rows, executed.
//!
//! Walks through four contrasts between a WebView and a Custom Tab on the
//! simulated device: Safe Browsing, JS-bridge data exposure, cookie/session
//! isolation, and the trusted-UI / IDP-blocking story of Figure 5.
//!
//! ```sh
//! cargo run --release --example attack_surface
//! ```

use whatcha_lookin_at::wla_device::browser::Browser;
use whatcha_lookin_at::wla_device::customtabs::CustomTab;
use whatcha_lookin_at::wla_device::security::{
    page_invoke_bridge, BridgeData, BridgeHost, SafeBrowsing,
};
use whatcha_lookin_at::wla_device::webview::{PageSource, WebViewInstance};
use whatcha_lookin_at::wla_device::{FridaRecorder, Logcat};
use whatcha_lookin_at::wla_net::NetLog;
use whatcha_lookin_at::wla_web::website::{ClientContext, Website};

fn main() {
    println!("== 1. Safe Browsing can be switched off in a WebView ==");
    let sb = SafeBrowsing::new();
    sb.flag("malvertising.example");
    let url = "https://malvertising.example/creative.html";
    println!(
        "  WebView, SafeBrowsing on : {:?}",
        sb.webview_verdict(url, true)
    );
    println!(
        "  WebView, SafeBrowsing off: {:?}   <- an ad SDK can do this",
        sb.webview_verdict(url, false)
    );
    println!(
        "  Custom Tab               : {:?}\n",
        sb.custom_tab_verdict(url)
    );

    println!("== 2. JS bridges leak to any loaded page ==");
    let mut wv = WebViewInstance::new(
        1,
        "com.shopping.app",
        FridaRecorder::new(),
        NetLog::new(),
        Logcat::new(),
    );
    wv.add_javascript_interface("com.paysdk.Checkout", "checkoutBridge");
    wv.load(PageSource::Synthetic {
        url: "https://attacker.example/free-gift".into(),
        html: "<h1>You won!</h1>".into(),
        extra_requests: vec![],
    });
    let hosts = [BridgeHost {
        name: "checkoutBridge".into(),
        data: BridgeData::PaymentCard {
            number: "4111 1111 1111 1111".into(),
            holder: "A. User".into(),
        },
    }];
    match page_invoke_bridge(&wv, &hosts, "checkoutBridge") {
        Some(BridgeData::PaymentCard { number, holder }) => {
            println!("  attacker page read via window.checkoutBridge: {holder} / {number}")
        }
        other => println!("  bridge call result: {other:?}"),
    }
    println!("  (a CustomTab has no addJavascriptInterface — nothing to leak)\n");

    println!("== 3. Session isolation vs session restore ==");
    let netlog = NetLog::new();
    let mut browser = Browser::new(netlog.clone());
    browser.cookies.login("social.example");
    let tab = CustomTab::launch(&mut browser, "https://social.example/feed", "<p>feed</p>");
    println!(
        "  Custom Tab session restored: {}",
        tab.session_restored(&browser)
    );
    let mut wv2 = WebViewInstance::new(
        2,
        "com.other.app",
        FridaRecorder::new(),
        netlog,
        Logcat::new(),
    );
    wv2.load(PageSource::Synthetic {
        url: "https://social.example/feed".into(),
        html: "<p>feed</p>".into(),
        extra_requests: vec![],
    });
    println!(
        "  WebView sees the session:    {} (own cold cookie jar)\n",
        wv2.cookies.is_logged_in("social.example")
    );

    println!("== 4. The IDP's view (Figure 5) ==");
    let fb = Website::facebook();
    let via_wv = fb.login_page(&ClientContext::webview("com.some.app"));
    let via_ct = fb.login_page(&ClientContext::browser());
    println!("  login via WebView possible: {}", via_wv.login_possible());
    println!("  login via CT/browser:       {}", via_ct.login_possible());
}
