//! Quickstart: generate a small synthetic app corpus, run the paper's
//! static analysis pipeline over the raw container bytes, and print the
//! headline numbers (§4.1's 55.7% / 20% / 15%).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use whatcha_lookin_at::Study;

fn main() {
    // Scale 1:500 ⇒ ~294 apps — a few seconds in debug, instant in release.
    let study = Study::new(500, 2024);
    println!(
        "generating a 1:{} scale corpus ({} apps) and analyzing it …\n",
        study.scale,
        146_800 / study.scale
    );

    let run = study.run_static();
    let r = &run.results;
    let n = r.analyzed as f64;

    println!("analyzed apps:        {}", r.analyzed);
    println!("broken containers:    {}", r.broken);
    println!(
        "using WebViews:       {} ({:.1}%)   [paper: 55.7%]",
        r.webview_apps,
        r.webview_apps as f64 / n * 100.0
    );
    println!(
        "using Custom Tabs:    {} ({:.1}%)   [paper: ~20%]",
        r.ct_apps,
        r.ct_apps as f64 / n * 100.0
    );
    println!(
        "using both:           {} ({:.1}%)   [paper: ~15%]",
        r.both_apps,
        r.both_apps as f64 / n * 100.0
    );
    println!(
        "custom WebView subclasses found by decompilation: {}",
        r.custom_webview_classes
    );
    println!(
        "dead-code WebView call sites discarded by traversal: {}",
        r.unreachable_sites_discarded
    );

    println!("\ntop five SDKs by WebView usage:");
    for row in r.sdk_usage.iter().filter(|s| s.wv_apps > 0).take(5) {
        println!(
            "  {:20} {:18} {:4} apps (×{} ≈ {} at paper scale)",
            row.name,
            format!("[{}]", row.category.label()),
            row.wv_apps,
            study.scale,
            study.rescale(row.wv_apps)
        );
    }
}
