//! SDK census: reproduce the paper's SDK-level findings (Tables 3–5) and
//! print its per-use-case takeaways.
//!
//! ```sh
//! cargo run --release --example sdk_census -- 25
//! ```
//!
//! The optional argument is the corpus scale divisor (default 50; lower =
//! bigger corpus = rarer SDKs observed).

use whatcha_lookin_at::wla_report::thousands;
use whatcha_lookin_at::wla_sdk_index::SdkCategory;
use whatcha_lookin_at::{experiments, Study};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50);
    let study = Study::new(scale, 7);
    eprintln!("analyzing {} apps …", 146_800 / scale);
    let run = study.run_static();

    println!("{}", experiments::table3(&study, &run).table.render());
    println!("{}", experiments::table4(&study, &run).table.render());
    println!("{}", experiments::table5(&study, &run).table.render());

    // The paper's takeaways, checked against this corpus.
    let r = &run.results;
    let cat_wv = |c: SdkCategory| {
        r.sdk_usage
            .iter()
            .filter(|s| s.category == c)
            .map(|s| s.wv_apps)
            .sum::<usize>()
    };
    let cat_ct = |c: SdkCategory| {
        r.sdk_usage
            .iter()
            .filter(|s| s.category == c)
            .map(|s| s.ct_apps)
            .sum::<usize>()
    };

    println!("Takeaways (measured on this corpus):");
    println!(
        "  * Ad SDKs still overwhelmingly use WebViews: ~{} WebView-SDK-app pairs vs ~{} CT pairs.",
        thousands(study.rescale(cat_wv(SdkCategory::Advertising))),
        thousands(study.rescale(cat_ct(SdkCategory::Advertising)))
    );
    println!(
        "  * Social SDKs have largely moved to CTs (Facebook's deprecation): ~{} CT pairs vs ~{} WebView pairs.",
        thousands(study.rescale(cat_ct(SdkCategory::Social))),
        thousands(study.rescale(cat_wv(SdkCategory::Social)))
    );
    println!(
        "  * Payment SDKs lag behind on CTs despite handling credentials: ~{} WebView pairs vs ~{} CT pairs.",
        thousands(study.rescale(cat_wv(SdkCategory::Payments))),
        thousands(study.rescale(cat_ct(SdkCategory::Payments)))
    );
    println!(
        "  * Engagement-measurement SDKs are a legitimate WebView use case: {} CT SDK(s) observed.",
        r.sdk_usage
            .iter()
            .filter(|s| s.category == SdkCategory::Engagement && s.ct_apps > 0)
            .count()
    );
}
