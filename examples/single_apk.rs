//! Single-APK walkthrough: every layer of the static pipeline on one
//! generated app — container decode, manifest, decompilation, source
//! parsing, call graph, entry points, traversal, and SDK labeling.
//!
//! ```sh
//! cargo run --release --example single_apk -- 7   # seed
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use whatcha_lookin_at::wla_apk::{Dex, Sapk};
use whatcha_lookin_at::wla_callgraph::{entry_points, record_web_calls, CallGraph};
use whatcha_lookin_at::wla_corpus::ecosystem::{Ecosystem, EcosystemParams};
use whatcha_lookin_at::wla_corpus::lowering::lower;
use whatcha_lookin_at::wla_corpus::playstore::{AppMeta, PlayCategory};
use whatcha_lookin_at::wla_decompile::{lift_dex, webview_subclasses_interned};
use whatcha_lookin_at::wla_intern::LocalInterner;
use whatcha_lookin_at::wla_manifest::wireformat;
use whatcha_lookin_at::wla_sdk_index::{LabelCache, LabelId, SdkIndex};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(7);

    // 1. Sample one app from the calibrated ecosystem and lower it to bytes.
    let catalog = SdkIndex::paper();
    let eco = Ecosystem::new(&catalog, EcosystemParams::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let meta = AppMeta {
        package: "com.example.walkthrough".into(),
        on_play_store: true,
        downloads: 12_000_000,
        category: PlayCategory::Puzzle,
        last_update_day: 950,
    };
    let spec = eco.sample_app(&mut rng, meta);
    let bytes = lower(&spec, &catalog, &mut rng).encode();
    println!("container: {} bytes", bytes.len());

    // 2. Decode the container and its sections.
    let apk = Sapk::decode(&bytes).expect("valid container");
    let manifest = wireformat::decode(apk.manifest_bytes().unwrap()).unwrap();
    let dex = Dex::decode(apk.dex_bytes().unwrap()).unwrap();
    println!(
        "manifest: package {} with {} components ({} deep-link)",
        manifest.package,
        manifest.components.len(),
        manifest.deep_link_activities().len()
    );
    println!(
        "dex: {} classes, {} method refs, {} instructions",
        dex.classes().len(),
        dex.method_count(),
        dex.instruction_count()
    );

    // 3. Decompile and parse for WebView subclasses (interned handles; the
    // lexicon resolves them back to text whenever we print).
    let sources = lift_dex(&dex);
    let mut lexicon = LocalInterner::new();
    let subclasses = webview_subclasses_interned(&sources, &mut lexicon);
    println!(
        "\ndecompiled {} source files; WebView subclasses:",
        sources.len()
    );
    for s in &subclasses {
        println!("  {}", lexicon.resolve(*s));
    }
    if let Some(first) = sources.first() {
        println!("\nfirst decompiled file ({}):", first.binary_name);
        for line in first.source.lines().take(14) {
            println!("  {line}");
        }
        println!("  …");
    }

    // 4. Call graph + entry-point traversal.
    let graph = CallGraph::build(&dex);
    let roots = entry_points(&graph, &manifest);
    println!(
        "\ncall graph: {} defined methods, {} internal edges, {} entry points",
        graph.defined_count(),
        graph.edge_count(),
        roots.len()
    );

    // 5. Record and label the WebView/CT call sites. Labels are attached
    // at record time; symbols resolve to text only here, at the print.
    let mut labels = LabelCache::default();
    let record = record_web_calls(
        &graph,
        &roots,
        &subclasses,
        &catalog,
        &mut lexicon,
        &mut labels,
    );
    println!("\nWebView call sites:");
    for site in &record.webview {
        let label = match site.label {
            LabelId::Sdk(idx) => {
                let sdk = &catalog.sdks()[idx as usize];
                format!("SDK: {} [{}]", sdk.name, sdk.category.label())
            }
            LabelId::CoreAndroid => "core Android".to_owned(),
            LabelId::Obfuscated => "obfuscated package".to_owned(),
            LabelId::Unlabeled => "first-party / unlabeled".to_owned(),
        };
        let receiver = lexicon.resolve(site.receiver_class);
        println!(
            "  {}{} {}.{}  ←  {}",
            if site.reachable { "" } else { "[DEAD] " },
            label,
            receiver.rsplit('/').next().unwrap_or(""),
            lexicon.resolve(site.method),
            lexicon.resolve(site.caller_class),
        );
    }
    println!("\nCustom-Tabs call sites:");
    for site in &record.custom_tabs {
        println!(
            "  {} ← {}",
            lexicon.resolve(site.method),
            lexicon.resolve(site.caller_class)
        );
    }
}
