//! Paper-scale workflow: persist a generated corpus as on-disk shards,
//! stream it through the analysis pipeline with memory-mapped reads,
//! print the run stats (including the shard-streaming table), then run
//! again to show the resume manifest skipping every shard.
//!
//! ```sh
//! cargo run --release --example streamed_corpus -- /tmp/wla-shards 500
//! ```

use whatcha_lookin_at::experiments::pipeline_stats_report;
use whatcha_lookin_at::wla_static::StreamConfig;
use whatcha_lookin_at::Study;

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = std::path::PathBuf::from(args.next().unwrap_or_else(|| "/tmp/wla-shards".to_owned()));
    let scale: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(500);

    let study = Study::new(scale, 2024);
    println!(
        "streaming a 1:{scale} scale corpus ({} apps) from shards under {} …\n",
        146_800 / scale,
        dir.display()
    );

    let run = study
        .run_static_streamed(&dir, StreamConfig::default())
        .expect("streamed run");
    println!("{}", pipeline_stats_report(&run).render());
    println!(
        "\napps using WebViews: {} — identical to Study::run_static at any worker count",
        run.results.webview_apps
    );

    // Same dir, same seed: the deterministic generator re-persists
    // byte-identical shards, so this run is served from the manifest.
    let resumed = study
        .run_static_streamed(&dir, StreamConfig::default())
        .expect("resumed run");
    println!(
        "\nrerun: {} shards re-analyzed, {} entries served from the resume manifest",
        resumed.stats.stream.shards_read, resumed.stats.stream.entries_cached
    );
    assert_eq!(resumed.results, run.results);
    println!("results identical — safe to interrupt and resume paper-scale runs");
}
