//! IAB inspector: instrument one app's WebView-based In-App Browser on the
//! controlled page, exactly as §3.2.2 does — Frida-style hooks on every
//! WebView method, a measurement server receiving Web-API beacons over
//! real loopback HTTP, and per-instance netlog capture.
//!
//! ```sh
//! cargo run --release --example iab_inspector -- com.facebook.katana
//! cargo run --release --example iab_inspector -- kik.android
//! ```

use whatcha_lookin_at::wla_device::iab::{all_profiles, profile_for};
use whatcha_lookin_at::wla_dynamic::iab_study::study_app;

fn main() {
    let package = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "com.facebook.katana".to_owned());
    let Some(profile) = profile_for(&package) else {
        eprintln!("unknown package {package}; known WebView-IAB apps:");
        for p in all_profiles() {
            eprintln!("  {:22} {}", p.package, p.app_name);
        }
        std::process::exit(1);
    };

    println!(
        "instrumenting {}'s IAB ({} surface) on the controlled page …\n",
        profile.app_name, profile.surface
    );
    let report = study_app(&profile, 1);

    println!("— hooked WebView calls (Frida analog) —");
    for call in &report.hooked_calls {
        let args = call
            .args
            .iter()
            .map(|a| {
                if a.len() > 64 {
                    format!("{}…", &a[..64])
                } else {
                    a.clone()
                }
            })
            .collect::<Vec<_>>()
            .join(", ");
        println!("  {}({})", call.method, args);
    }

    println!("\n— JS bridges exposed —");
    if report.bridges.is_empty() {
        println!("  (none)");
    } else {
        for b in &report.bridges {
            println!(
                "  {b}{}",
                if report.obfuscated_bridge {
                    "  [obfuscated class]"
                } else {
                    ""
                }
            );
        }
    }

    println!("\n— inferred intents —");
    for intent in &report.inferred_intents {
        println!("  {intent}");
    }

    println!("\n— Web APIs recorded by the measurement server (Table 9) —");
    if report.web_api_usage.is_empty() {
        println!("  (none — no Web API usage reached the server)");
    } else {
        for (iface, method) in &report.web_api_usage {
            println!("  {iface}.{method}");
        }
    }

    if let Some(redirector) = &report.redirector {
        println!("\n— redirector observed —\n  {redirector}");
    }

    println!("\n— distinct hosts contacted (netlog) —");
    for host in &report.hosts {
        println!("  {host}");
    }
}
